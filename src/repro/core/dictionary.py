"""Algorithm 1: SSD dictionary construction.

Given a program, build a dictionary with two kinds of entries and rewrite
the program as a stream of references to them:

* **base entries** — one per unique instruction in the program (step 1 of
  Algorithm 1), where "unique" is judged by the paper's matching rule:
  branch/call targets compare by encoded *size*, everything else exactly;
* **sequence entries** — one per 2–4 instruction sequence the greedy
  matcher selects; a candidate must occur at least twice in the program
  and lie within a single basic block (step 3.a), and may contain at most
  one control transfer, necessarily last (implied by the basic-block rule
  because branches and calls terminate blocks).

The paper implements step 3.a with a digram hash table holding occurrence
*positions* and rescans up to four instructions at each position.  We get
the same answer in guaranteed O(n) by counting 2-, 3- and 4-gram
occurrences up front: "sequence s occurs at least twice in P" is exactly
``ngram_count[s] >= 2`` (the current occurrence contributes one).

The matcher is greedy exactly as in the paper: after matching a prefix of
length L it skips to the next unmatched instruction, forgoing potentially
longer matches inside the prefix.

Implementation note: match keys are interned to dense integer *base ids*
in the first pass; every later stage (n-gram counting, sequence entries,
item generation, tree serialization) works on small integers.  The n-gram
tables go further and pack each window of ids into a *single* integer
(``id0 | id1 << k | ...`` plus a length-marker bit) so the counting loop
allocates no per-window tuples at all.  At word97 scale (1.4M
instructions) this keeps the n-gram tables hundreds of megabytes smaller
than tuples-of-keys would, and roughly halves counting time.

Construction is parallelizable: ``build_dictionary(..., jobs=n)`` fans the
n-gram counting (mergeable partial counts) and the per-function
segmentation out over worker processes via :mod:`repro.perf.parallel`.
The parallel result is byte-identical to the serial one: partial counts
merge to the same table, and segmentation is a pure per-function function
of that table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa import Instruction, Program, basic_blocks
from ..isa.opcodes import OP_TABLE
from ..perf.parallel import fanout, get_shared, resolve_jobs
from ..perf.profile import PhaseProfile, ensure

#: Maximum sequence-entry length (the paper's L <= 4).
MAX_SEQUENCE_LENGTH = 4


@dataclass(frozen=True)
class BaseEntry:
    """A dictionary entry for a single unique instruction.

    ``instruction`` is a canonical representative: for branches/calls the
    target value is meaningless (targets travel in the item stream) and is
    normalized to 0; ``target_size`` records the encoded target width that
    is part of the match key.

    In the paper's *absolute-targets* ablation (section 2.1: "a compressor
    configured to represent branch targets as absolute values within
    dictionary entries") the target instead lives here: ``stored_target``
    holds the absolute target (instruction index for branches, callee
    index for calls), entries with different targets stay distinct, and
    items carry no target bytes.
    """

    key: Tuple
    instruction: Instruction
    target_size: Optional[int] = None
    stored_target: Optional[int] = None

    @property
    def target_in_entry(self) -> bool:
        return self.stored_target is not None

    @property
    def is_branch(self) -> bool:
        return self.instruction.is_branch

    @property
    def is_call(self) -> bool:
        return self.instruction.is_call

    @property
    def has_target(self) -> bool:
        return self.is_branch or self.is_call


@dataclass(frozen=True)
class EntryRef:
    """One element of the rewritten program: a dictionary reference.

    ``base_ids`` holds one id for a base-entry reference, two to four for
    a sequence-entry reference.  If the referenced entry ends in an
    intra-function branch, ``branch_target`` is the target *instruction
    index* within the function; if it ends in a call, ``call_target`` is
    the callee function index.
    """

    base_ids: Tuple[int, ...]
    branch_target: Optional[int] = None
    call_target: Optional[int] = None

    @property
    def is_sequence(self) -> bool:
        return len(self.base_ids) > 1

    @property
    def length(self) -> int:
        return len(self.base_ids)


@dataclass
class SSDDictionary:
    """The constructed dictionary plus the rewritten program.

    ``base_entries[i]`` is the base entry with (provisional) id ``i``;
    ``sequence_entries`` maps id-tuples to their use counts.  Provisional
    ids are insertion-order; the container layer re-maps them to the
    canonical order defined by base-entry compression.
    """

    base_entries: List[BaseEntry] = field(default_factory=list)
    base_id_of_key: Dict[Tuple, int] = field(default_factory=dict)
    sequence_entries: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    base_use_counts: Dict[int, int] = field(default_factory=dict)
    #: per function: the stream E of dictionary references
    function_refs: List[List[EntryRef]] = field(default_factory=list)

    @property
    def entry_count(self) -> int:
        return len(self.base_entries) + len(self.sequence_entries)

    def coverage(self) -> Tuple[int, int]:
        """(instructions covered by sequence refs, total instructions)."""
        covered = 0
        total = 0
        for refs in self.function_refs:
            for ref in refs:
                total += ref.length
                if ref.is_sequence:
                    covered += ref.length
        return covered, total


def _normalized_instruction(insn: Instruction) -> Instruction:
    """Canonical representative: branch/call targets zeroed."""
    if insn.is_branch or insn.is_call:
        return insn.replace_target(0)
    return insn


def build_dictionary(program: Program,
                     max_len: int = MAX_SEQUENCE_LENGTH,
                     absolute_targets: bool = False,
                     match_mode: str = "greedy",
                     jobs: int = 1,
                     profile: Optional[PhaseProfile] = None) -> SSDDictionary:
    """Run Algorithm 1 over ``program``.

    ``max_len`` parameterizes the paper's fixed 4 for the sequence-length
    ablation experiment.  ``absolute_targets`` switches to the ablation
    variant where targets live inside dictionary entries (branches with
    different targets no longer share an entry).

    ``match_mode`` selects the rewrite strategy:

    * ``"greedy"`` — the paper's Algorithm 1: take the longest match at
      the current position and skip past it ("by skipping over
      instructions once it has found a match, Algorithm 1 ignores the
      possibility of finding a longer match beginning at one of the
      other instructions in the matched prefix").
    * ``"optimal"`` — a dynamic program that picks, per function, the
      segmentation minimizing total item-stream bytes (2 per item plus
      target bytes).  Dictionary-side cost is not modelled, so this is a
      lower bound on what non-greedy matching could buy; the ablation
      experiment measures the actual end-to-end difference.

    ``jobs`` fans n-gram counting and segmentation out over worker
    processes (0 = one per core, see
    :func:`repro.perf.parallel.resolve_jobs`); the result is byte-identical
    to ``jobs=1``.  ``profile`` (a :class:`repro.perf.PhaseProfile`)
    receives per-phase timings when supplied.
    """
    if max_len < 1:
        raise ValueError(f"max_len must be >= 1, got {max_len}")
    if match_mode not in ("greedy", "optimal"):
        raise ValueError(f"match_mode must be greedy/optimal, got {match_mode!r}")
    prof = ensure(profile)
    result = SSDDictionary()

    # Pass 0 (step 1): base entries + per-function id lists + block limits.
    # Interning assigns ids in first-seen program order, so this pass is
    # inherently serial.
    id_lists: List[List[int]] = []
    block_ends: List[List[int]] = []
    with prof.phase("dictionary.base_entries"):
        base_id_of_key = result.base_id_of_key
        base_entries = result.base_entries
        for fn in program.functions:
            keys, sizes = fn.keys_and_sizes()
            ids: List[int] = []
            append = ids.append
            for insn, key, size in zip(fn.insns, keys, sizes):
                stored_target = None
                # ``size is not None`` exactly for branch/call instructions.
                if absolute_targets and size is not None:
                    stored_target = insn.target
                    key = key + (stored_target,)
                base_id = base_id_of_key.get(key)
                if base_id is None:
                    base_id = len(base_entries)
                    base_id_of_key[key] = base_id
                    base_entries.append(BaseEntry(
                        key=key,
                        instruction=_normalized_instruction(insn),
                        target_size=size,
                        stored_target=stored_target,
                    ))
                append(base_id)
            id_lists.append(ids)
            ends = [0] * len(fn.insns)
            for block in basic_blocks(fn):
                for index in range(block.start, block.end):
                    ends[index] = block.end
            block_ends.append(ends)

    # Windows of base ids pack into single integers — ``id0 | id1 << k | ...``
    # with a marker bit above the top id disambiguating window lengths — so
    # the hot loops below allocate no per-window tuples.
    key_bits = max(1, (len(result.base_entries) - 1).bit_length())
    marks = [1 << (length * key_bits) for length in range(max_len + 1)]

    # Pass 1: n-gram occurrence counts (the "occurs at least twice" oracle).
    with prof.phase("dictionary.ngrams"):
        ngram_counts = _ngram_counts(id_lists, max_len, key_bits, jobs)

    # Pass 2a (step 3.a): segment every function against the counts.
    with prof.phase("dictionary.segmentation"):
        if match_mode == "optimal":
            item_costs = [
                2.0 + (entry.target_size or 0)
                if entry.has_target and not entry.target_in_entry else 2.0
                for entry in result.base_entries
            ]
        else:
            item_costs = None
        all_lengths = _segment_functions(id_lists, block_ends, ngram_counts,
                                         max_len, key_bits, marks, match_mode,
                                         item_costs, jobs)

    # Pass 2b (steps 2-3): rewrite each function as dictionary references.
    with prof.phase("dictionary.rewrite"):
        sequence_entries = result.sequence_entries
        base_use_counts = result.base_use_counts
        for fn, ids, lengths in zip(program.functions, id_lists, all_lengths):
            refs: List[EntryRef] = []
            append = refs.append
            insns = fn.insns
            index = 0
            for match_len in lengths:
                last = insns[index + match_len - 1]
                meta = OP_TABLE[last.op]
                branch_target = last.target if meta.is_branch else None
                call_target = last.target if meta.is_call else None
                window = tuple(ids[index:index + match_len])
                if match_len >= 2:
                    sequence_entries[window] = (
                        sequence_entries.get(window, 0) + 1)
                else:
                    base_use_counts[window[0]] = (
                        base_use_counts.get(window[0], 0) + 1)
                append(EntryRef(base_ids=window,
                                branch_target=branch_target,
                                call_target=call_target))
                index += match_len
            result.function_refs.append(refs)
    return result


# ---------------------------------------------------------------------------
# Pass 1: packed n-gram counting (serial kernel + parallel fan-out).

def _count_ngrams(id_lists: Sequence[List[int]], max_len: int,
                  key_bits: int) -> Dict[int, int]:
    """Count 2..``max_len``-gram occurrences; packed-int keys, no tuples."""
    counts: Dict[int, int] = {}
    if max_len < 2:
        return counts
    get = counts.get
    marks = [1 << (length * key_bits) for length in range(max_len + 1)]
    for ids in id_lists:
        n = len(ids)
        for start in range(n - 1):
            packed = ids[start]
            shift = key_bits
            top = n - start
            if top > max_len:
                top = max_len
            for offset in range(1, top):
                packed |= ids[start + offset] << shift
                shift += key_bits
                key = packed | marks[offset + 1]
                counts[key] = get(key, 0) + 1
    return counts


def _count_chunk(id_lists: List[List[int]]) -> Dict[int, int]:
    """Fan-out worker: partial counts for one chunk of functions."""
    max_len, key_bits = get_shared()
    return _count_ngrams(id_lists, max_len, key_bits)


def _split_by_weight(items: List, parts: int) -> List[List]:
    """Split ``items`` into up to ``parts`` contiguous, similar-weight chunks.

    Weight is ``len(item[0])`` for tuple items (the segmentation tasks) and
    ``len(item)`` otherwise (the id lists) — instruction counts both ways.
    """
    def weight_of(item) -> int:
        return len(item[0]) if isinstance(item, tuple) else len(item)

    total = sum(weight_of(item) for item in items)
    target = max(1, total // parts)
    chunks: List[List] = []
    current: List = []
    weight = 0
    for item in items:
        current.append(item)
        weight += weight_of(item)
        if weight >= target and len(chunks) < parts - 1:
            chunks.append(current)
            current = []
            weight = 0
    if current:
        chunks.append(current)
    return chunks


def _ngram_counts(id_lists: List[List[int]], max_len: int, key_bits: int,
                  jobs: int) -> Dict[int, int]:
    """Global n-gram table, optionally merged from per-chunk partial counts."""
    if max_len < 2:
        return {}
    workers = resolve_jobs(jobs)
    if workers <= 1 or len(id_lists) < 2:
        return _count_ngrams(id_lists, max_len, key_bits)
    chunks = _split_by_weight(id_lists, workers)
    parts = fanout(_count_chunk, chunks, workers, shared=(max_len, key_bits),
                   chunksize=1)
    merged = parts[0]
    for part in parts[1:]:
        get = merged.get
        for key, value in part.items():
            merged[key] = get(key, 0) + value
    return merged


# ---------------------------------------------------------------------------
# Pass 2a: per-function segmentation (serial kernels + parallel fan-out).

def _greedy_segmentation(ids: List[int], ends: List[int],
                         ngram_counts: Dict[int, int], max_len: int,
                         key_bits: int, marks: List[int]) -> List[int]:
    """The paper's greedy longest-match walk; returns segment lengths."""
    lengths: List[int] = []
    append = lengths.append
    get = ngram_counts.get
    n = len(ids)
    index = 0
    while index < n:
        limit = ends[index] - index
        if limit > max_len:
            limit = max_len
        match_len = 1
        if limit >= 2:
            packed = ids[index] | (ids[index + 1] << key_bits)
            if limit == 2:
                if get(packed | marks[2], 0) >= 2:
                    match_len = 2
            else:
                packs = [0, 0, packed]
                shift = 2 * key_bits
                for offset in range(2, limit):
                    packed |= ids[index + offset] << shift
                    shift += key_bits
                    packs.append(packed)
                for length in range(limit, 1, -1):
                    if get(packs[length] | marks[length], 0) >= 2:
                        match_len = length
                        break
        append(match_len)
        index += match_len
    return lengths


def _optimal_segmentation(ids: List[int], ends: List[int],
                          ngram_counts: Dict[int, int], max_len: int,
                          key_bits: int, marks: List[int],
                          item_costs: List[float]) -> List[int]:
    """Item-byte-minimizing segmentation (dynamic program).

    ``cost[i]`` = minimal item bytes to encode instructions ``i..n``;
    each candidate segment costs 2 (the 16-bit index) plus the target
    bytes its final instruction forces into the item stream
    (``item_costs``, indexed by base id).
    """
    n = len(ids)
    cost = [0.0] * (n + 1)
    choice = [1] * (n + 1)
    get = ngram_counts.get

    for index in range(n - 1, -1, -1):
        limit = ends[index] - index
        if limit > max_len:
            limit = max_len
        best = item_costs[ids[index]] + cost[index + 1]
        best_len = 1
        packed = ids[index]
        shift = key_bits
        for length in range(2, limit + 1):
            packed |= ids[index + length - 1] << shift
            shift += key_bits
            if get(packed | marks[length], 0) < 2:
                continue
            candidate = item_costs[ids[index + length - 1]] + cost[index + length]
            # Strict improvement or tie -> prefer the longer match (fewer
            # items stress the dictionary less).
            if candidate <= best:
                best = candidate
                best_len = length
        cost[index] = best
        choice[index] = best_len

    lengths: List[int] = []
    index = 0
    while index < n:
        lengths.append(choice[index])
        index += choice[index]
    return lengths


def _segment_chunk(tasks: List[Tuple[List[int], List[int]]]) -> List[List[int]]:
    """Fan-out worker: segment one chunk of ``(ids, block_ends)`` functions."""
    mode, ngram_counts, max_len, key_bits, marks, item_costs = get_shared()
    if mode == "greedy":
        return [_greedy_segmentation(ids, ends, ngram_counts, max_len,
                                     key_bits, marks)
                for ids, ends in tasks]
    return [_optimal_segmentation(ids, ends, ngram_counts, max_len,
                                  key_bits, marks, item_costs)
            for ids, ends in tasks]


def _segment_functions(id_lists: List[List[int]], block_ends: List[List[int]],
                       ngram_counts: Dict[int, int], max_len: int,
                       key_bits: int, marks: List[int], match_mode: str,
                       item_costs: Optional[List[float]],
                       jobs: int) -> List[List[int]]:
    """Segment every function, serially or over worker processes."""
    workers = resolve_jobs(jobs)
    if workers <= 1 or len(id_lists) < 2:
        if match_mode == "greedy":
            return [_greedy_segmentation(ids, ends, ngram_counts, max_len,
                                         key_bits, marks)
                    for ids, ends in zip(id_lists, block_ends)]
        return [_optimal_segmentation(ids, ends, ngram_counts, max_len,
                                      key_bits, marks, item_costs)
                for ids, ends in zip(id_lists, block_ends)]
    tasks = list(zip(id_lists, block_ends))
    chunks = _split_by_weight(tasks, workers)
    shared = (match_mode, ngram_counts, max_len, key_bits, marks, item_costs)
    results = fanout(_segment_chunk, chunks, workers, shared=shared,
                     chunksize=1)
    merged: List[List[int]] = []
    for chunk_result in results:
        merged.extend(chunk_result)
    return merged


def dictionary_statistics(dictionary: SSDDictionary) -> Dict[str, float]:
    """Summary numbers used by reports and tests."""
    covered, total = dictionary.coverage()
    items = sum(len(refs) for refs in dictionary.function_refs)
    lengths = [len(ids) for ids in dictionary.sequence_entries]
    return {
        "base_entries": len(dictionary.base_entries),
        "sequence_entries": len(dictionary.sequence_entries),
        "total_entries": dictionary.entry_count,
        "items": items,
        "instructions": total,
        "sequence_coverage": covered / total if total else 0.0,
        "mean_sequence_length": (sum(lengths) / len(lengths)) if lengths else 0.0,
        "compression_leverage": total / items if items else 0.0,
    }
