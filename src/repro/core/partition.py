"""Dictionary partitioning (section 2.1).

A 16-bit item index addresses at most 65,536 dictionary entries, but large
programs need more (the paper's Word97 required 281,107).  SSD then splits
the dictionary into a *common* part that applies to the whole program and
a series of *sub-dictionaries*, each covering a contiguous run of
functions.

Index spaces
------------

Each segment (run of functions) sees one 16-bit index space laid out as::

    [0, CB)                common base entries
    [CB, CB+CS)            common sequence-tree nodes
    [CB+CS, CB+CS+LB)      this segment's local base entries
    [CB+CS+LB, ...)        this segment's local sequence-tree nodes

Tree tokens address a separate *base addressing space*: common bases take
``[0, CB)`` and local bases ``[CB, CB+LB)``.  The common tree may only
reference common bases (it is shared by every segment), which constrains
which sequences may be promoted to the common dictionary.

Capacity accounting counts tree *nodes* (shared prefixes included), since
nodes — not just entries — consume indices.  One slot (0xFFFF) is reserved
for the tree codec's pop token.

Selection heuristic: when partitioning is needed, the most-used base
entries are promoted to the common dictionary (up to a budget), then the
most-used sequences whose bases are all common.  Functions are packed
greedily, in program order, into the largest segments that fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .dictionary import SSDDictionary

#: total index-space capacity per segment (0xFFFF reserved for pop tokens)
SEGMENT_CAPACITY = 65535
#: default budget of the common dictionary, in index slots
DEFAULT_COMMON_BUDGET = 16384


class PartitionError(ValueError):
    """Raised when a program cannot be partitioned (e.g. one giant function)."""


def _tree_node_count(sequences: Set[Tuple[int, ...]]) -> int:
    """Number of depth >= 1 nodes in the forest these sequences induce."""
    prefixes: Set[Tuple[int, ...]] = set()
    for sequence in sequences:
        for end in range(2, len(sequence) + 1):
            prefixes.add(sequence[:end])
    return len(prefixes)


@dataclass
class Segment:
    """One sub-dictionary: a run of functions plus its local entries."""

    function_indices: List[int] = field(default_factory=list)
    local_base_ids: Set[int] = field(default_factory=set)
    local_sequences: Set[Tuple[int, ...]] = field(default_factory=set)


@dataclass
class PartitionPlan:
    """Which entries are common and how functions map to segments."""

    common_base_ids: List[int]
    common_sequences: List[Tuple[int, ...]]
    segments: List[Segment]
    segment_of_function: List[int]

    @property
    def is_partitioned(self) -> bool:
        return len(self.segments) > 1 or bool(self.common_base_ids)


def _function_requirements(dictionary: SSDDictionary,
                           findex: int) -> Tuple[Set[int], Set[Tuple[int, ...]]]:
    """Base ids and sequences function ``findex`` needs addressable."""
    bases: Set[int] = set()
    sequences: Set[Tuple[int, ...]] = set()
    for ref in dictionary.function_refs[findex]:
        if ref.is_sequence:
            sequences.add(tuple(ref.base_ids))
            bases.update(ref.base_ids)
        else:
            bases.add(ref.base_ids[0])
    return bases, sequences


def plan_partition(dictionary: SSDDictionary,
                   common_budget: int = DEFAULT_COMMON_BUDGET) -> PartitionPlan:
    """Decide the common dictionary and the segment packing."""
    total_nodes = _tree_node_count(set(dictionary.sequence_entries))
    total_space = len(dictionary.base_entries) + total_nodes
    function_count = len(dictionary.function_refs)

    if total_space <= SEGMENT_CAPACITY:
        # The common case: one segment, no common dictionary.
        segment = Segment(function_indices=list(range(function_count)))
        for findex in range(function_count):
            bases, sequences = _function_requirements(dictionary, findex)
            segment.local_base_ids |= bases
            segment.local_sequences |= sequences
        return PartitionPlan(common_base_ids=[], common_sequences=[],
                             segments=[segment],
                             segment_of_function=[0] * function_count)

    # -- choose the common dictionary ------------------------------------
    base_use = dict(dictionary.base_use_counts)
    for sequence, count in dictionary.sequence_entries.items():
        for base_id in sequence:
            base_use[base_id] = base_use.get(base_id, 0) + count
    ranked_bases = sorted(base_use, key=lambda b: (-base_use[b], b))
    common_bases = ranked_bases[: int(common_budget * 0.75)]
    common_base_set = set(common_bases)

    candidate_sequences = sorted(
        (s for s in dictionary.sequence_entries
         if all(b in common_base_set for b in s)),
        key=lambda s: (-dictionary.sequence_entries[s], s))
    common_sequences: List[Tuple[int, ...]] = []
    node_budget = common_budget - len(common_bases)
    prefixes: Set[Tuple[int, ...]] = set()
    for sequence in candidate_sequences:
        added = [sequence[:end] for end in range(2, len(sequence) + 1)
                 if sequence[:end] not in prefixes]
        if len(prefixes) + len(added) > node_budget:
            continue
        prefixes.update(added)
        common_sequences.append(sequence)
    common_seq_set = set(common_sequences)
    common_nodes = len(prefixes)
    common_space = len(common_bases) + common_nodes

    # -- greedy packing of functions into segments ------------------------
    # The prefix set of the current segment is maintained incrementally so
    # packing stays O(total refs) even at word97 scale.
    segments: List[Segment] = []
    segment_of_function: List[int] = []
    current = Segment()
    current_prefixes: Set[Tuple[int, ...]] = set()

    def prefixes_of(sequences: Set[Tuple[int, ...]],
                    existing: Set[Tuple[int, ...]]) -> Set[Tuple[int, ...]]:
        added: Set[Tuple[int, ...]] = set()
        for sequence in sequences:
            for end in range(2, len(sequence) + 1):
                prefix = sequence[:end]
                if prefix not in existing:
                    added.add(prefix)
        return added

    for findex in range(function_count):
        bases, sequences = _function_requirements(dictionary, findex)
        local_bases = bases - common_base_set
        local_sequences = sequences - common_seq_set
        added_bases = local_bases - current.local_base_ids
        added_sequences = local_sequences - current.local_sequences
        added_prefixes = prefixes_of(added_sequences, current_prefixes)
        projected = (common_space
                     + len(current.local_base_ids) + len(added_bases)
                     + len(current_prefixes) + len(added_prefixes))
        if projected > SEGMENT_CAPACITY and current.function_indices:
            segments.append(current)
            current = Segment()
            current_prefixes = set()
            added_bases = local_bases
            added_sequences = local_sequences
            added_prefixes = prefixes_of(added_sequences, current_prefixes)
            projected = common_space + len(added_bases) + len(added_prefixes)
        if projected > SEGMENT_CAPACITY:
            raise PartitionError(
                f"function {findex} alone needs {len(added_bases)} bases and "
                f"{len(added_prefixes)} tree nodes on top of the "
                f"{common_space}-slot common dictionary")
        current.function_indices.append(findex)
        current.local_base_ids |= added_bases
        current.local_sequences |= added_sequences
        current_prefixes |= added_prefixes
        segment_of_function.append(len(segments))
    if current.function_indices:
        segments.append(current)

    return PartitionPlan(common_base_ids=common_bases,
                         common_sequences=common_sequences,
                         segments=segments,
                         segment_of_function=segment_of_function)


def partition_statistics(plan: PartitionPlan) -> Dict[str, float]:
    """Numbers for reports: segment count, common share, duplication."""
    duplicated = 0
    if len(plan.segments) > 1:
        seen: Dict[int, int] = {}
        for segment in plan.segments:
            for base_id in segment.local_base_ids:
                seen[base_id] = seen.get(base_id, 0) + 1
        duplicated = sum(count - 1 for count in seen.values() if count > 1)
    return {
        "segments": len(plan.segments),
        "common_bases": len(plan.common_base_ids),
        "common_sequences": len(plan.common_sequences),
        "duplicated_bases": duplicated,
    }
