"""repro — Split-Stream Dictionary (SSD) program compression.

A full reproduction of "Split-Stream Dictionary Program Compression"
(Steven Lucco, PLDI 2000): the SSD compressor/decompressor, the virtual
ISA and VM substrate it runs on, the BRISC baseline, the RAM-constrained
JIT runtime, synthetic stand-ins for the paper's benchmarks, and a
harness regenerating every table and figure of the evaluation.

Quick start::

    from repro import compress, decompress
    from repro.workloads import benchmark_program

    program = benchmark_program("xlisp", scale=0.25)
    compressed = compress(program)
    assert decompress(compressed.data).functions[0].insns == \\
        program.functions[0].insns

See README.md for the architecture tour and DESIGN.md for the
paper-to-module map.
"""

from .core import CompressedProgram, SSDReader, compress, decompress, open_container
from .errors import (
    BufferCapacityError,
    ChecksumMismatch,
    CorruptContainer,
    LimitExceeded,
    ReproError,
    TruncatedStream,
)
from .isa import Instruction, Op, Program, assemble, disassemble
from .vm import Interpreter, run_program

__version__ = "1.1.0"

__all__ = [
    "BufferCapacityError",
    "ChecksumMismatch",
    "CompressedProgram",
    "CorruptContainer",
    "Instruction",
    "Interpreter",
    "LimitExceeded",
    "Op",
    "Program",
    "ReproError",
    "SSDReader",
    "TruncatedStream",
    "__version__",
    "assemble",
    "compress",
    "decompress",
    "disassemble",
    "open_container",
    "run_program",
]
