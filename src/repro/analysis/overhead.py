"""Execution-time overhead decomposition (the time half of Table 5).

The paper ran each benchmark twice — optimized x86 vs incrementally
JIT-translated SSD — and used execution-time profiling to split the
overhead into a decompression/JIT component and a code-quality component.
We reproduce the decomposition with modelled cycles:

* the interpreter supplies per-instruction dynamic execution counts;
* the optimized native backend (peephole fusions) prices the baseline;
* the per-instruction JIT lowering prices SSD-translated code — slower
  only because it cannot fuse across VM instructions (section 2.2.4:
  individual-instruction conversion);
* dictionary decompression and per-function copy-phase translation are
  priced by ``repro.jit.costs``, charged once per function actually
  executed (the VM translates lazily, one function at a time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import compress, open_container
from ..isa import Program
from ..jit import SSD_COSTS, Translator, build_tables
from ..jit.costs import TranslationCosts
from ..vm import ExecutionResult, lower_function, run_program


#: modelled session length the one-time decompression costs are amortized
#: over.  The paper's runs (spec95 reference inputs, the Word97 interactive
#: suite) execute for minutes; our synthetic drivers run for fractions of a
#: second of modelled time, so without normalization the one-time dictionary
#: decompression would swamp the percentages.  Execution cycles are scaled
#: to this session; translation and dictionary costs are charged once
#: (JIT-translate-once, as in Table 5).
DEFAULT_SESSION_SECONDS = 60.0


@dataclass(frozen=True)
class OverheadReport:
    """One benchmark's Table 5 time columns (modelled cycles)."""

    name: str
    native_cycles: float
    jit_exec_cycles: float
    translation_cycles: float
    dictionary_cycles: float
    functions_executed: int

    @property
    def decompression_cycles(self) -> float:
        return self.translation_cycles + self.dictionary_cycles

    @property
    def total_overhead_pct(self) -> float:
        """Table 5's "SSD Execution Time Overhead" column."""
        return 100.0 * ((self.jit_exec_cycles + self.decompression_cycles)
                        - self.native_cycles) / self.native_cycles

    @property
    def jit_overhead_pct(self) -> float:
        """Table 5's "JIT Translation and Decompression" column."""
        return 100.0 * self.decompression_cycles / self.native_cycles

    @property
    def quality_overhead_pct(self) -> float:
        """Table 5's "Overhead Due to Reduced Code Quality" column."""
        return 100.0 * (self.jit_exec_cycles - self.native_cycles) / self.native_cycles


def measure_overhead(program: Program,
                     fuel: int = 8_000_000,
                     costs: TranslationCosts = SSD_COSTS,
                     result: Optional[ExecutionResult] = None,
                     compressed_data: Optional[bytes] = None,
                     session_seconds: float = DEFAULT_SESSION_SECONDS,
                     hybrid: bool = False,
                     ) -> OverheadReport:
    """Run the workload and decompose SSD's execution-time overhead.

    ``result`` and ``compressed_data`` can be supplied to reuse work the
    caller already did (profiling and compression are the slow parts).
    The profiled run's execution cycles are scaled to ``session_seconds``
    of modelled time (450 MHz), while the one-time decompression and
    translation costs are charged once — the paper's JIT-once setting.

    ``hybrid=True`` models section 2.2.4's hybrid approach: each executed
    function is re-optimized after copy-phase translation, recovering
    baseline code quality at an extra per-byte translation cost.
    """
    if result is None:
        result = run_program(program, fuel=fuel)
    if not result.profile:
        raise ValueError(f"{program.name}: empty execution profile")
    if session_seconds <= 0:
        raise ValueError(f"session_seconds must be positive, got {session_seconds}")

    by_function: Dict[int, List[Tuple[int, int]]] = {}
    for (findex, iindex), count in result.profile.items():
        by_function.setdefault(findex, []).append((iindex, count))
    executed_functions = sorted(by_function)
    native_cycles = 0.0
    jit_cycles = 0.0
    for findex in executed_functions:
        fn = program.functions[findex]
        optimized = lower_function(fn, optimize=True).cycles_per_insn
        plain = lower_function(fn, optimize=False).cycles_per_insn
        for iindex, count in by_function[findex]:
            native_cycles += count * optimized[iindex]
            jit_cycles += count * plain[iindex]

    data = compressed_data if compressed_data is not None else compress(program).data
    reader = open_container(data)
    tables = build_tables(reader)
    translator = Translator(reader, tables)
    translation_cycles = 0.0
    for findex in executed_functions:
        items = reader.decoded_items(findex)
        produced = translator.translate_function(findex).size
        translation_cycles += costs.translate_cycles(produced, len(items))
        if hybrid:
            from ..jit.costs import HYBRID_OPT_CYCLES_PER_BYTE

            translation_cycles += produced * HYBRID_OPT_CYCLES_PER_BYTE
    dictionary_cycles = costs.dictionary_cycles(tables.total_bytes)
    if hybrid:
        # Re-optimized code runs at baseline quality.
        jit_cycles = native_cycles

    # Session normalization: the profiled run is a representative sample
    # of a session_seconds-long execution.
    from ..jit.costs import CLOCK_HZ

    session_cycles = session_seconds * CLOCK_HZ
    scale = session_cycles / native_cycles
    return OverheadReport(
        name=program.name,
        native_cycles=native_cycles * scale,
        jit_exec_cycles=jit_cycles * scale,
        translation_cycles=translation_cycles,
        dictionary_cycles=dictionary_cycles,
        functions_executed=len(executed_functions),
    )
