"""Compressed-size accounting (the size half of Table 5).

Given a benchmark program, measure every representation the paper (or a
skeptical reviewer) would ask about:

* optimized native ("optimized x86") size — the denominator;
* SSD container size;
* BRISC compressed size (against a supplied external dictionary);
* uncompressed VM bytecode size;
* byte-oriented LZ77 over the VM bytecode — the stream-oriented,
  *non*-interpretable comparison point from section 2.

:func:`codec_sizes` adds the registry dimension: container bytes for
every codec registered in ``repro.codecs``, so the same accounting
extends automatically when a codec is added.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..brisc import PatternDictionary
from ..brisc import compress as brisc_compress
from ..core import compress as ssd_compress
from ..isa import Program
from ..isa.encoding import encode_program
from ..lz import lz77
from ..vm import native_size


@dataclass(frozen=True)
class SizeReport:
    """All measured sizes for one benchmark."""

    name: str
    x86_bytes: int
    ssd_bytes: int
    brisc_bytes: Optional[int]
    vm_bytes: int
    lz_bytes: int
    ssd_dictionary_bytes: int
    ssd_item_bytes: int
    #: adaptive arithmetic coding over the VM bytecode — the archival,
    #: non-interpretable frontier from section 2 (None unless requested)
    arith_bytes: Optional[int] = None

    @property
    def ssd_ratio(self) -> float:
        return self.ssd_bytes / self.x86_bytes

    @property
    def brisc_ratio(self) -> Optional[float]:
        if self.brisc_bytes is None:
            return None
        return self.brisc_bytes / self.x86_bytes

    @property
    def lz_ratio(self) -> float:
        return self.lz_bytes / self.x86_bytes

    @property
    def vm_ratio(self) -> float:
        return self.vm_bytes / self.x86_bytes

    @property
    def arith_ratio(self) -> Optional[float]:
        if self.arith_bytes is None:
            return None
        return self.arith_bytes / self.x86_bytes


def measure_sizes(program: Program,
                  brisc_dictionary: Optional[PatternDictionary] = None,
                  x86_bytes: Optional[int] = None,
                  include_archival: bool = False) -> SizeReport:
    """Measure every size for ``program``.

    ``brisc_dictionary`` may be omitted to skip the (slow) BRISC pass;
    ``include_archival`` adds the arithmetic-coding frontier (slow on
    large programs).
    """
    compressed = ssd_compress(program)
    sections = compressed.section_sizes
    encoded = encode_program(program)
    dictionary_bytes = (sections["common_bases"] + sections["common_tree"]
                        + sections["segment_bases"] + sections["segment_trees"])
    brisc_bytes = None
    if brisc_dictionary is not None:
        brisc_bytes = brisc_compress(program, brisc_dictionary).size
    arith_bytes = None
    if include_archival:
        from ..lz import arith

        arith_bytes = len(arith.compress(encoded))
    return SizeReport(
        name=program.name,
        x86_bytes=x86_bytes if x86_bytes is not None else native_size(program),
        ssd_bytes=compressed.size,
        brisc_bytes=brisc_bytes,
        vm_bytes=len(encoded),
        lz_bytes=len(lz77.compress(encoded)),
        ssd_dictionary_bytes=dictionary_bytes,
        ssd_item_bytes=sections["items"],
        arith_bytes=arith_bytes,
    )


def codec_sizes(program: Program,
                candidates: Optional[Sequence[str]] = None) -> Dict[str, int]:
    """Container bytes per registered codec (the registry dimension).

    ``candidates`` defaults to every concrete registered codec — ids
    whose codec has a wire id, i.e. everything except selectors like
    ``auto``.  Each value is the size of the bytes that would land on
    disk, envelope included, so codecs are compared fairly.
    """
    from ..codecs import codec_ids, compress_with, get_codec

    if candidates is None:
        candidates = [codec_id for codec_id in codec_ids()
                      if get_codec(codec_id).wire_id]
    return {codec_id: compress_with(codec_id, program).size
            for codec_id in candidates}
