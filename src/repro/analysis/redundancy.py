"""Table 1 statistics: instruction and digram redundancy.

Reproduces every column of the paper's Table 1 for a program, using the
same matching rule as the compressor (branch targets compare by size, not
value — the table's caption calls this out explicitly).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..isa import Program
from ..vm import native_size


@dataclass(frozen=True)
class RedundancyStats:
    """One row of Table 1."""

    name: str
    x86_bytes: int
    total_instructions: int
    unique_instructions: int
    unique_digrams: int
    digram_reuse: float
    top_sequence_reuse: float

    @property
    def avg_reuse(self) -> float:
        return (self.total_instructions / self.unique_instructions
                if self.unique_instructions else 0.0)


def measure_redundancy(program: Program, x86_bytes: int = None) -> RedundancyStats:
    """Compute the Table 1 row for ``program``.

    ``x86_bytes`` may be passed to avoid re-lowering when the caller
    already knows the optimized native size.
    """
    instruction_counts: Counter = Counter()
    digram_counts: Counter = Counter()
    sequence_counts: Counter = Counter()
    total = 0
    for fn in program.functions:
        keys = fn.match_keys()
        total += len(keys)
        instruction_counts.update(keys)
        for a, b in zip(keys, keys[1:]):
            digram_counts[(a, b)] += 1
        for length in (2, 3, 4):
            for start in range(len(keys) - length + 1):
                sequence_counts[tuple(keys[start:start + length])] += 1

    ranked = sorted(sequence_counts.values(), reverse=True)
    top_count = max(1, len(ranked) // 10)
    top_reuse = sum(ranked[:top_count]) / top_count if ranked else 0.0
    digram_total = sum(digram_counts.values())
    digram_reuse = digram_total / len(digram_counts) if digram_counts else 0.0

    return RedundancyStats(
        name=program.name,
        x86_bytes=x86_bytes if x86_bytes is not None else native_size(program),
        total_instructions=total,
        unique_instructions=len(instruction_counts),
        unique_digrams=len(digram_counts),
        digram_reuse=digram_reuse,
        top_sequence_reuse=top_reuse,
    )
