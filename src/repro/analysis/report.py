"""Plain-text table and chart rendering for experiment output.

Experiments print paper-vs-measured tables to stdout and (optionally)
write them to files; this module holds the shared formatting so every
exhibit looks the same.  ``ascii_chart`` renders Figure 3-style series
without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, precision: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 title: Optional[str] = None, precision: int = 2) -> str:
    """Render an aligned text table."""
    grid = [[format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in grid:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in grid:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_chart(series: Dict[str, Sequence[float]],
                x_values: Sequence[float],
                title: str = "",
                height: int = 16,
                width: int = 64) -> str:
    """Render one or more y-series against shared x values.

    Markers cycle through ``* + o x``; axes are labelled with min/max.
    """
    if not series:
        raise ValueError("no series to chart")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "*+ox"
    for series_index, (name, ys) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        for x, y in zip(x_values, ys):
            column = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(f"{markers[i % len(markers)]} {name}"
                        for i, name in enumerate(series))
    lines.append(legend)
    lines.append(f"{y_max:>10.1f} ┐")
    for row in grid:
        lines.append(" " * 11 + "│" + "".join(row))
    lines.append(f"{y_min:>10.1f} ┘" + "└".rjust(0))
    lines.append(" " * 12 + f"{x_min:<10.3g}" + " " * max(0, width - 20) + f"{x_max:>10.3g}")
    return "\n".join(lines)


def paper_vs_measured(headers: Sequence[str],
                      rows: Sequence[Sequence[Cell]],
                      title: str, precision: int = 2) -> str:
    """Convenience wrapper making exhibit output uniform."""
    return render_table(headers, rows, title=title, precision=precision) + "\n"
