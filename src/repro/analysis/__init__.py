"""Measurement: redundancy stats, size ratios, overhead decomposition,
and text rendering for the experiment exhibits."""

from .overhead import OverheadReport, measure_overhead
from .ratios import SizeReport, codec_sizes, measure_sizes
from .redundancy import RedundancyStats, measure_redundancy
from .report import ascii_chart, format_cell, paper_vs_measured, render_table

__all__ = [
    "OverheadReport",
    "RedundancyStats",
    "SizeReport",
    "ascii_chart",
    "codec_sizes",
    "format_cell",
    "measure_overhead",
    "measure_redundancy",
    "measure_sizes",
    "paper_vs_measured",
    "render_table",
]
