"""Synthetic code updates: version chains over the benchmark corpus.

The delta subsystem (``repro.delta``) is about shipping ``v_N+1`` to a
fleet holding ``v_N``, so its evaluation needs *version pairs* — the
same program before and after a realistic maintenance edit.  The real
benchmarks are one-shot binaries; this module evolves them the way a
point release evolves a program:

* a small fraction of functions get body edits (immediate and register
  tweaks — constants retuned, allocation shifted);
* a function or two is retired (body truncated to a bare ``ret``,
  keeping every call index valid);
* a function or two is added (cloned under a fresh name and appended,
  which cannot invalidate existing call targets).

Edits are seeded and validated, so a version chain is deterministic,
every member passes :func:`repro.isa.validate.validate_program`, and
function *names* persist across versions — which is exactly what
``repro.delta.patch`` keys its per-function item-stream deltas on.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Tuple

from ..isa import Instruction, Op, Program
from ..isa.opcodes import NUM_REGISTERS
from ..isa.program import Function
from ..isa.validate import validate_program
from .corpus import benchmark_program
from .profiles import PROFILES


def evolve_program(program: Program, seed: int = 0, *,
                   touch_fraction: float = 0.08,
                   imm_jitter: int = 16,
                   add_functions: int = 1,
                   retire_functions: int = 1) -> Program:
    """One maintenance release: a seeded, validated edit of ``program``.

    The result keeps the program's name and almost all of its function
    names, so compressing both versions yields containers that diff
    small against each other.
    """
    rng = random.Random(f"versions:{program.name}:{seed}")
    functions = [Function(fn.name, list(fn.insns)) for fn in program.functions]
    count = len(functions)

    touched = rng.sample(range(count),
                         min(count, max(1, round(count * touch_fraction))))
    for findex in touched:
        fn = functions[findex]
        for _ in range(max(1, len(fn.insns) // 16)):
            iindex = rng.randrange(len(fn.insns))
            insn = fn.insns[iindex]
            meta = insn.meta
            if meta.uses_imm and not meta.uses_target:
                fn.insns[iindex] = dataclasses.replace(
                    insn, imm=(insn.imm or 0)
                    + rng.randint(-imm_jitter, imm_jitter))
            elif meta.uses_rs2 and not meta.uses_target:
                fn.insns[iindex] = dataclasses.replace(
                    insn, rs2=rng.randrange(NUM_REGISTERS))

    for _ in range(retire_functions):
        if count <= 1:
            break
        findex = rng.randrange(count)
        if findex == program.entry or len(functions[findex].insns) <= 1:
            continue
        functions[findex] = Function(functions[findex].name,
                                     [Instruction(op=Op.RET)])

    for extra in range(add_functions):
        source = functions[rng.randrange(count)]
        functions.append(Function(f"{source.name}__r{seed}_{extra}",
                                  list(source.insns)))

    evolved = Program(name=program.name, functions=functions,
                      entry=program.entry)
    validate_program(evolved)
    return evolved


def version_chain(program: Program, releases: int = 3,
                  seed: int = 0, **knobs: float) -> List[Program]:
    """``releases + 1`` successive versions, starting with ``program``."""
    chain = [program]
    for release in range(releases):
        chain.append(evolve_program(chain[-1], seed=seed + release,
                                    **knobs))  # type: ignore[arg-type]
    return chain


def version_pairs(scale: float = 0.1, seed: int = 0,
                  names: Optional[List[str]] = None,
                  ) -> List[Tuple[str, Program, Program]]:
    """(name, v_N, v_N+1) pairs across the benchmark corpus."""
    selected = names if names is not None else [p.name for p in PROFILES]
    pairs = []
    for name in selected:
        base = benchmark_program(name, scale)
        pairs.append((name, base, evolve_program(base, seed=seed)))
    return pairs


__all__ = ["evolve_program", "version_chain", "version_pairs"]
