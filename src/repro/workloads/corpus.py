"""Corpus construction: the nine benchmark programs, plus caching.

Building the full-scale word97 stand-in takes tens of seconds, so the
corpus builder memoizes per (name, scale) within a process.  Experiments
share one corpus instance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..isa import Program
from .generator import generate_benchmark
from .profiles import PROFILES, BenchmarkProfile, profile

_cache: Dict[Tuple[str, float], Program] = {}


def benchmark_program(name: str, scale: float = 1.0) -> Program:
    """Return the synthetic program for benchmark ``name`` at ``scale``."""
    key = (name, scale)
    if key not in _cache:
        _cache[key] = generate_benchmark(profile(name), scale=scale)
    return _cache[key]


def corpus(scale: float = 1.0,
           names: Optional[Iterable[str]] = None) -> List[Tuple[BenchmarkProfile, Program]]:
    """Build (profile, program) pairs for the requested benchmarks.

    ``names=None`` builds all nine, in the paper's (size-descending) order.
    """
    selected = list(names) if names is not None else [p.name for p in PROFILES]
    return [(profile(name), benchmark_program(name, scale)) for name in selected]


def clear_cache() -> None:
    """Drop memoized programs (tests use this to bound memory)."""
    _cache.clear()


def training_corpus(scale: float = 1.0,
                    exclude: Optional[str] = None) -> List[Program]:
    """Programs used to train BRISC's external dictionary.

    BRISC needs a corpus of *representative* programs (paper section 2);
    excluding the program under test reproduces the honest setting where
    the external dictionary was trained ahead of time.
    """
    names = [p.name for p in PROFILES if p.name != exclude]
    return [benchmark_program(name, scale) for name in names]
