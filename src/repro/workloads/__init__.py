"""Benchmark synthesis: AST, compiler, profiles, generator, traces, corpus.

The paper evaluated on Word97 and spec95 compiled for OmniVM; neither is
available.  This package regenerates the *statistical phenomenon* those
binaries exhibit — template-driven compiler output with heavy instruction
re-use — as seeded, executable synthetic programs (see DESIGN.md for the
substitution argument).
"""

from . import ast
from .compiler import CompileError, GLOBALS_BASE, compile_function, compile_module
from .corpus import benchmark_program, clear_cache, corpus, training_corpus
from .generator import ProgramGenerator, generate_benchmark
from .profiles import (
    PAPER_AVERAGE_BRISC_RATIO,
    PAPER_AVERAGE_EXEC_OVERHEAD_PCT,
    PAPER_AVERAGE_SSD_RATIO,
    PAPER_BRISC_TRANSLATE_MBPS,
    PAPER_REGEN_INFRASTRUCTURE_OVERHEAD_PCT,
    PAPER_SSD_COPY_PHASE_MBPS,
    PAPER_SSD_DICT_PHASE_MBPS,
    PAPER_TABLE6,
    PAPER_WORD97_THIRD_BUFFER_OVERHEAD_PCT,
    PROFILE_BY_NAME,
    PROFILES,
    BenchmarkProfile,
    GeneratorKnobs,
    PaperTable1Row,
    PaperTable5Row,
    profile,
)
from .traces import (Trace, TraceSpec, generate_trace, trace_statistics,
                     zipf_weights)

__all__ = [
    "BenchmarkProfile",
    "CompileError",
    "GLOBALS_BASE",
    "GeneratorKnobs",
    "PAPER_AVERAGE_BRISC_RATIO",
    "PAPER_AVERAGE_EXEC_OVERHEAD_PCT",
    "PAPER_AVERAGE_SSD_RATIO",
    "PAPER_BRISC_TRANSLATE_MBPS",
    "PAPER_REGEN_INFRASTRUCTURE_OVERHEAD_PCT",
    "PAPER_SSD_COPY_PHASE_MBPS",
    "PAPER_SSD_DICT_PHASE_MBPS",
    "PAPER_TABLE6",
    "PAPER_WORD97_THIRD_BUFFER_OVERHEAD_PCT",
    "PROFILES",
    "PROFILE_BY_NAME",
    "PaperTable1Row",
    "PaperTable5Row",
    "ProgramGenerator",
    "Trace",
    "TraceSpec",
    "ast",
    "benchmark_program",
    "clear_cache",
    "compile_function",
    "compile_module",
    "corpus",
    "generate_benchmark",
    "generate_trace",
    "profile",
    "trace_statistics",
    "training_corpus",
    "zipf_weights",
]
