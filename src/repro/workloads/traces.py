"""Synthetic function-call traces for the RAM-constrained experiments.

Table 6 and Figure 3 replay a Word97 interactive session (auto-format,
auto-summarize, grammar check) against a size-limited JIT translation
buffer.  We cannot replay Word97, so this module generates call traces
with the two properties the buffer experiment depends on:

* **Skewed popularity** — a small set of hot functions receives most
  calls (Zipf-distributed ranks), which is what makes high hit rates
  possible at all;
* **Phase behaviour** — the working set shifts between phases (distinct
  feature invocations touch different code), which is what forces
  re-translation when the buffer is small.

Traces are deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class TraceSpec:
    """Parameters of a phased Zipf call trace."""

    function_count: int
    calls_per_phase: int = 40_000
    phases: int = 3
    #: Zipf skew: higher -> hotter hot set.
    skew: float = 1.1
    #: fraction of each phase's calls that go to a shared, always-hot core
    #: (event loops, allocators, string utilities).
    core_fraction: float = 0.35
    #: size of that shared core, as a fraction of all functions.
    core_size_fraction: float = 0.05
    #: when True, each phase starts by calling every function in its
    #: region once (feature initialization touches lots of code once) —
    #: this is what makes even a generous buffer translate the whole
    #: program at least once, as in the paper's Table 6.
    cold_sweep: bool = True
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.function_count <= 1:
            raise ValueError("need at least 2 functions for a trace")
        if not 0 <= self.core_fraction <= 1:
            raise ValueError("core_fraction must be in [0, 1]")


def zipf_weights(count: int, skew: float) -> List[float]:
    """Zipf popularity curve: weight of rank *r* is ``1 / r**skew``.

    The one sampler shared by every skew-driven workload in the repo
    (trace synthesis here, the cluster skew and prefetch benchmarks) so
    "Zipf-1.1 traffic" means the same curve everywhere.
    """
    return [1.0 / (rank ** skew) for rank in range(1, count + 1)]


#: historical private name; prefer :func:`zipf_weights`
_zipf_weights = zipf_weights


class Trace(List[int]):
    """A call trace that remembers where its phases begin.

    Behaves exactly like the plain ``List[int]`` it used to be
    (equality, slicing, ``len``), plus ``phase_boundaries``: the call
    offsets where each phase after the first starts — the breaks
    :meth:`repro.profile.AccessProfile.from_trace` uses to avoid
    learning a successor edge across a working-set shift.
    """

    def __init__(self, calls: Sequence[int] = (),
                 phase_boundaries: Sequence[int] = ()) -> None:
        super().__init__(calls)
        self.phase_boundaries: Tuple[int, ...] = tuple(phase_boundaries)


def generate_trace(spec: TraceSpec) -> Trace:
    """Generate the full call trace.

    Returns a :class:`Trace` — list-compatible with the historical
    ``List[int]`` return, with phase start offsets attached as
    ``.phase_boundaries``.
    """
    rng = random.Random(spec.seed)
    all_functions = list(range(spec.function_count))
    core_size = max(1, int(spec.function_count * spec.core_size_fraction))
    core = rng.sample(all_functions, core_size)
    core_weights = zipf_weights(core_size, spec.skew)

    trace: List[int] = []
    boundaries: List[int] = []
    remaining = [f for f in all_functions if f not in set(core)]
    rng.shuffle(remaining)
    for phase in range(spec.phases):
        if phase:
            boundaries.append(len(trace))
        # Each phase works over its own slice of the non-core functions.
        lo = (phase * len(remaining)) // spec.phases
        hi = ((phase + 1) * len(remaining)) // spec.phases
        phase_functions = remaining[lo:hi] or remaining
        # Zipf order is re-drawn per phase: a different hot set each time.
        ranked = list(phase_functions)
        rng.shuffle(ranked)
        weights = zipf_weights(len(ranked), spec.skew)
        core_calls = int(spec.calls_per_phase * spec.core_fraction)
        phase_calls = spec.calls_per_phase - core_calls
        calls = rng.choices(ranked, weights=weights, k=phase_calls)
        calls += rng.choices(core, weights=core_weights, k=core_calls)
        rng.shuffle(calls)
        if spec.cold_sweep:
            sweep = list(phase_functions)
            rng.shuffle(sweep)
            trace.extend(sweep)
        trace.extend(calls)
    return Trace(trace, phase_boundaries=boundaries)


def trace_statistics(trace: Sequence[int]) -> dict:
    """Summary statistics used by tests and reports."""
    from collections import Counter

    counts = Counter(trace)
    total = len(trace)
    ranked = counts.most_common()
    top10 = max(1, len(ranked) // 10)
    top10_share = sum(count for _, count in ranked[:top10]) / total if total else 0.0
    return {
        "calls": total,
        "distinct_functions": len(counts),
        "top10pct_share": top10_share,
        "hottest_share": ranked[0][1] / total if ranked else 0.0,
    }
