"""Seeded random program synthesis.

Generates :class:`~repro.workloads.ast.Module` values whose compiled form
matches a benchmark profile's size and redundancy targets, then compiles
them to virtual-ISA programs.  Everything is driven by one
``random.Random(seed)`` instance, so a given (profile, scale) pair always
produces bit-identical programs.

Guarantees the rest of the system relies on:

* **Validity** — generated modules compile and pass ``validate_program``.
* **Termination** — all loops are bounded counters; the call graph is a
  DAG (function ``i`` only calls ``j > i``), so every program halts.
* **Bounded cost** — an estimated dynamic cost is tracked bottom-up and
  callees that would blow the budget are never placed inside loops, so
  the interpreter can run every benchmark with modest fuel.
* **Observable output** — the entry function prints results, giving the
  compression round-trip oracle something to compare.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..isa import Program
from . import ast
from .compiler import compile_module
from .profiles import BenchmarkProfile

#: generator never nests loops deeper than this
_MAX_LOOP_DEPTH = 2
#: per-function estimated dynamic cost ceiling
_FN_COST_CAP = 60_000.0
#: cost ceiling for a callee placed inside a loop
_LOOP_CALLEE_COST_CAP = 2_000.0
#: cost ceiling for callees of the entry function's phase loops
_MAIN_CALLEE_COST_CAP = 2_500.0
#: call-graph locality window: function i calls j in (i, i + window]
_CALL_WINDOW = 64

_BINOP_WEIGHTS = [
    (ast.BinOpKind.ADD, 30),
    (ast.BinOpKind.SUB, 18),
    (ast.BinOpKind.MUL, 8),
    (ast.BinOpKind.AND, 7),
    (ast.BinOpKind.OR, 6),
    (ast.BinOpKind.XOR, 5),
    (ast.BinOpKind.SHL, 5),
    (ast.BinOpKind.SHR, 5),
    (ast.BinOpKind.DIV, 2),
    (ast.BinOpKind.MOD, 2),
]
_CMP_WEIGHTS = [
    (ast.CmpKind.EQ, 18),
    (ast.CmpKind.NE, 22),
    (ast.CmpKind.LT, 30),
    (ast.CmpKind.GE, 18),
    (ast.CmpKind.LTU, 7),
    (ast.CmpKind.GEU, 5),
]


#: maximum statement nesting (ifs + loops combined)
_MAX_STMT_DEPTH = 3


@dataclass
class _FunctionContext:
    """Mutable state while generating one function body."""

    params: int
    locals_count: int
    reserved: set
    loop_depth: int = 0
    stmt_depth: int = 0

    def writable_slots(self) -> List[int]:
        return [s for s in range(self.params + self.locals_count)
                if s not in self.reserved]

    def readable_slots(self) -> List[int]:
        return list(range(self.params + self.locals_count))


class ProgramGenerator:
    """Synthesizes one benchmark program from a profile."""

    def __init__(self, profile: BenchmarkProfile, scale: float = 1.0,
                 seed: Optional[int] = None) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.profile = profile
        self.scale = scale
        self.rng = random.Random(profile.seed if seed is None else seed)
        self.knobs = profile.knobs
        self._constant_pool = self._build_constant_pool()
        self._est_cost: List[float] = []

    # -- public API -------------------------------------------------------

    def generate_module(self) -> ast.Module:
        """Generate the AST module for this benchmark.

        Function count is chosen from an empirically measured average
        function size (a few sample functions are generated and compiled
        first), and generation switches to tiny accessor-style stubs once
        the compiled-instruction total reaches the target, so the program
        lands close to the paper's Table 1 size.
        """
        target = max(80, int(self.profile.table1.total_instructions * self.scale))
        module = ast.Module(name=self.profile.name,
                            globals_count=self.knobs.globals_count)
        avg_size = self._sample_average_function_size(module)
        # Generous count: generation switches to stubs once the target is
        # met, so overshooting the estimate only adds a few tiny functions.
        factor = 2.0 if target < 5000 else 1.35
        count = max(3, round(factor * target / avg_size) + 2)
        self._est_cost = [0.0] * count
        # Leaves first so call targets always have a known cost.
        bodies: List[Optional[ast.FunctionDef]] = [None] * count
        compiled_total = 0
        from .compiler import compile_function

        for index in range(count - 1, 0, -1):
            if compiled_total >= target:
                bodies[index] = self._generate_stub(index)
            else:
                bodies[index] = self._generate_function(index, count)
            compiled_total += len(compile_function(bodies[index], module))
        bodies[0] = self._generate_main(count)
        module.functions = bodies  # type: ignore[assignment]
        return module

    def _sample_average_function_size(self, module: ast.Module) -> float:
        """Average compiled size of a few trial functions (same knobs)."""
        from .compiler import compile_function

        sample_rng_state = self.rng.getstate()
        self._est_cost = [0.0] * 64
        sizes = []
        for index in range(8):
            fn = self._generate_function(index, 64)
            sizes.append(len(compile_function(fn, module)))
        self.rng.setstate(sample_rng_state)
        return max(10.0, sum(sizes) / len(sizes))

    def _generate_stub(self, index: int) -> ast.FunctionDef:
        """A tiny accessor-style function (real programs have many)."""
        ctx = _FunctionContext(params=0, locals_count=2, reserved=set())
        value, cost = self._expr(ctx, 2)
        self._est_cost[index] = cost + 8.0
        return ast.FunctionDef(name=f"f{index}", params=0, locals_count=2,
                               body=(ast.Return(value),))

    def generate(self) -> Program:
        """Generate and compile the benchmark program."""
        return compile_module(self.generate_module())

    # -- constants --------------------------------------------------------

    def _build_constant_pool(self) -> List[int]:
        """Distinct constants, small values first.

        Small constants (field offsets, counts, masks) fill the front of
        the pool; once the narrow ranges are exhausted the pool widens —
        real programs with tens of thousands of distinct constants
        necessarily contain large ones (addresses, table sizes).
        """
        knobs = self.knobs
        size = knobs.constant_pool
        wide_target = max(1, int(size * knobs.wide_constant_fraction))
        seen = set()
        pool: List[int] = []

        def add(value: int) -> None:
            if value not in seen:
                seen.add(value)
                pool.append(value)

        for common in (0, 1, 2, 4, 8, 16, 32, 64, 255, 1024, -1):
            if len(pool) >= size - wide_target:
                break
            add(common)
        attempts = 0
        span = 256
        while len(pool) < size - wide_target:
            add(self.rng.randrange(-span // 8, span))
            attempts += 1
            if attempts > span:  # range saturated; widen it
                span *= 4
                attempts = 0
        while len(pool) < size:
            add(self.rng.randrange(-(1 << 30), 1 << 30))
        return pool

    def _constant(self) -> ast.Const:
        # Zipf-flavoured draw: low-index pool entries recur far more often.
        pool = self._constant_pool
        rank = int(len(pool) * (self.rng.random() ** self.knobs.constant_skew))
        return ast.Const(pool[min(rank, len(pool) - 1)])

    # -- expressions -------------------------------------------------------

    def _expr(self, ctx: _FunctionContext, depth: int) -> Tuple[ast.Expr, float]:
        if depth <= 1 or self.rng.random() < 0.45:
            return self._leaf(ctx)
        kind = self._weighted(_BINOP_WEIGHTS)
        left, lcost = self._expr(ctx, depth - 1)
        if self.rng.random() < 0.55:
            right: ast.Expr = self._constant()
            rcost = 0.5
        else:
            right, rcost = self._expr(ctx, depth - 1)
        return ast.BinOp(kind, left, right), lcost + rcost + 1.0

    def _leaf(self, ctx: _FunctionContext) -> Tuple[ast.Expr, float]:
        roll = self.rng.random()
        if roll < 0.35:
            return self._constant(), 1.0
        if roll < 0.35 + self.knobs.global_fraction:
            return ast.Global(self.rng.randrange(self.knobs.globals_count)), 1.0
        slots = ctx.readable_slots()
        return ast.Local(self.rng.choice(slots)), 1.0

    def _cmp(self, ctx: _FunctionContext) -> Tuple[ast.Cmp, float]:
        kind = self._weighted(_CMP_WEIGHTS)
        left, lcost = self._expr(ctx, 2)
        if self.rng.random() < 0.5:
            right: ast.Expr = self._constant()
            rcost = 0.5
        else:
            right, rcost = self._expr(ctx, 2)
        return ast.Cmp(kind, left, right), lcost + rcost + 2.0

    # -- statements --------------------------------------------------------

    def _statement(self, ctx: _FunctionContext, index: int, count: int,
                   budget: float) -> Tuple[List[ast.Stmt], float]:
        """Generate one logical statement.

        Returns ``(statements, estimated dynamic cost)``; a single logical
        statement may expand to a short list (e.g. a while loop plus its
        counter initialization).
        """
        knobs = self.knobs
        roll = self.rng.random()
        writable = ctx.writable_slots()
        may_nest = ctx.stmt_depth < _MAX_STMT_DEPTH

        if (roll < knobs.loop_fraction and ctx.loop_depth < _MAX_LOOP_DEPTH
                and may_nest and writable):
            return self._loop(ctx, index, count, budget)

        if roll < knobs.loop_fraction + knobs.if_fraction and may_nest:
            cond, ccost = self._cmp(ctx)
            ctx.stmt_depth += 1
            then_body, tcost = self._body(ctx, index, count,
                                          self.rng.randint(1, 3), budget / 2)
            else_body: Tuple[ast.Stmt, ...] = ()
            ecost = 0.0
            if self.rng.random() < 0.4:
                else_body, ecost = self._body(ctx, index, count,
                                              self.rng.randint(1, 2), budget / 2)
            ctx.stmt_depth -= 1
            return [ast.If(cond, then_body, else_body)], ccost + max(tcost, ecost)

        if (roll < knobs.loop_fraction + knobs.if_fraction + knobs.call_fraction
                and index + 1 < count and writable):
            callee = self._pick_callee(index, count, cost_cap=budget)
            if callee is not None:
                argc = self.rng.randint(0, min(3, self.knobs.max_params))
                args = []
                acost = 0.0
                for _ in range(argc):
                    arg, cost = self._expr(ctx, 2)
                    args.append(arg)
                    acost += cost
                dest = ast.Local(self.rng.choice(writable))
                return ([ast.CallAssign(dest, callee, tuple(args))],
                        self._est_cost[callee] + acost + 3.0)

        if roll > 0.97:
            value, cost = self._expr(ctx, 2)
            return [ast.Print(value)], cost + 2.0

        # Plain assignment — the workhorse statement.
        dest: ast.Expr
        if self.rng.random() < knobs.global_fraction and self.knobs.globals_count:
            dest = ast.Global(self.rng.randrange(self.knobs.globals_count))
        elif writable:
            dest = ast.Local(self.rng.choice(writable))
        else:
            return [], 0.0
        value, cost = self._expr(ctx, knobs.expr_depth)
        return [ast.Assign(dest, value)], cost + 1.0

    def _loop(self, ctx: _FunctionContext, index: int, count: int,
              budget: float) -> Tuple[List[ast.Stmt], float]:
        writable = ctx.writable_slots()
        if not writable:
            return [], 0.0
        counter_slot = self.rng.choice(writable)
        ctx.reserved.add(counter_slot)
        ctx.loop_depth += 1
        ctx.stmt_depth += 1
        iterations = self.rng.randint(2, 8)
        body, bcost = self._body(ctx, index, count, self.rng.randint(1, 4),
                                 min(budget / iterations, _LOOP_CALLEE_COST_CAP))
        ctx.loop_depth -= 1
        ctx.stmt_depth -= 1
        ctx.reserved.discard(counter_slot)
        counter = ast.Local(counter_slot)
        total = iterations * (bcost + 6.0) + 3.0
        if self.rng.random() < 0.7:
            return [ast.CountedLoop(counter, ast.Const(iterations), body)], total
        # While with an explicit decrement — same bound, different shape.
        body = body + (ast.Assign(counter,
                                  ast.BinOp(ast.BinOpKind.SUB, counter,
                                            ast.Const(1))),)
        init = ast.Assign(counter, ast.Const(iterations))
        loop = ast.While(ast.Cmp(ast.CmpKind.NE, counter, ast.Const(0)), body)
        return [init, loop], total

    def _body(self, ctx: _FunctionContext, index: int, count: int,
              statements: int, budget: float) -> Tuple[Tuple[ast.Stmt, ...], float]:
        body: List[ast.Stmt] = []
        total = 0.0
        for _ in range(statements):
            stmts, cost = self._statement(ctx, index, count, budget)
            if not stmts:
                continue
            if total + cost > max(budget, 10.0):
                continue  # too expensive; try a different statement
            body.extend(stmts)
            total += cost
        return tuple(body), total

    def _pick_callee(self, index: int, count: int,
                     cost_cap: float) -> Optional[int]:
        lo = index + 1
        hi = min(count - 1, index + _CALL_WINDOW)
        if lo > hi:
            return None
        for _ in range(6):
            candidate = self.rng.randint(lo, hi)
            if self._est_cost[candidate] <= cost_cap:
                return candidate
        return None

    # -- functions ---------------------------------------------------------

    def _generate_function(self, index: int, count: int) -> ast.FunctionDef:
        knobs = self.knobs
        params = self.rng.randint(0, knobs.max_params)
        locals_count = self.rng.randint(2, knobs.max_locals)
        ctx = _FunctionContext(params=params, locals_count=locals_count,
                               reserved=set())
        statements = max(2, int(self.rng.gauss(knobs.avg_statements,
                                               knobs.avg_statements / 3)))
        body, cost = self._body(ctx, index, count, statements, _FN_COST_CAP)
        ret_value, rcost = self._expr(ctx, 2)
        body = body + (ast.Return(ret_value),)
        self._est_cost[index] = cost + rcost + 8.0
        return ast.FunctionDef(name=f"f{index}", params=params,
                               locals_count=locals_count, body=body)

    def _generate_main(self, count: int) -> ast.FunctionDef:
        """The driver: phased loops calling across the program, printing."""
        locals_count = 6
        ctx = _FunctionContext(params=0, locals_count=locals_count, reserved=set())
        body: List[ast.Stmt] = []
        iterations = max(2, self.profile.workload_iterations)
        phases = 3 if count > 8 else 1
        cost = 0.0
        for phase in range(phases):
            # Each phase exercises a different region of the function space
            # (the paper's word97 suite ran auto-format, auto-summarize and
            # grammar-check phases).
            region_lo = 1 + (phase * (count - 1)) // phases
            region_hi = 1 + ((phase + 1) * (count - 1)) // phases - 1
            if region_lo > region_hi:
                continue
            region = list(range(region_lo, region_hi + 1))
            cheap = [f for f in region if self._est_cost[f] <= _MAIN_CALLEE_COST_CAP]
            if not cheap:
                # Fall back to the cheapest functions in the region so each
                # phase always exercises some code.
                cheap = sorted(region, key=lambda f: self._est_cost[f])[:4]
            sample = min(10, len(cheap))
            calls: List[ast.Stmt] = []
            phase_cost = 0.0
            for slot, callee in enumerate(self.rng.sample(cheap, sample)):
                argc = self.rng.randint(0, 2)
                args = tuple(self._constant() for _ in range(argc))
                calls.append(ast.CallAssign(ast.Local(slot % (locals_count - 1)),
                                            callee, args))
                phase_cost += self._est_cost[callee]
            if not calls:
                continue
            counter = ast.Local(locals_count - 1)
            body.append(ast.CountedLoop(counter, ast.Const(iterations),
                                        tuple(calls)))
            body.append(ast.Print(ast.Local(0)))
            cost += iterations * phase_cost
        body.append(ast.Return(ast.Const(0)))
        self._est_cost[0] = cost + 10.0
        return ast.FunctionDef(name="main", params=0, locals_count=locals_count,
                               body=tuple(body))

    # -- helpers -----------------------------------------------------------

    def _weighted(self, table):
        kinds = [k for k, _ in table]
        weights = [w for _, w in table]
        return self.rng.choices(kinds, weights=weights, k=1)[0]


def generate_benchmark(profile: BenchmarkProfile, scale: float = 1.0) -> Program:
    """Generate the compiled program for ``profile`` at ``scale``."""
    return ProgramGenerator(profile, scale=scale).generate()
