"""Per-benchmark profiles: the paper's measurements plus generator knobs.

Paper data is transcribed from Table 1 (redundancy statistics), Table 5
(compression ratios and execution-time overheads) and Table 6 / Figure 3
(buffer behaviour, word97 only).  The generator knobs are calibrated so the
synthetic stand-ins reproduce each benchmark's *size* and *redundancy
structure* — the properties SSD's compression ratio actually depends on.

Knob intuition:

* ``constant_pool`` — how many distinct literal constants the program
  draws from.  A small pool relative to program size means the same ``li``
  instructions recur, raising instruction re-use (word97 behaviour); a
  large pool lowers it (ijpeg/compress behaviour).
* ``max_locals`` — more locals means more distinct frame offsets in
  loads/stores, lowering re-use.
* ``avg_statements`` — statements per function; with ``function_count``
  fixed by the instruction target this shifts function size distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class PaperTable1Row:
    """One row of the paper's Table 1."""

    x86_bytes: int
    total_instructions: int
    unique_instructions: int
    avg_reuse: float
    unique_digrams: int
    digram_reuse: float
    top_sequence_reuse: float


@dataclass(frozen=True)
class PaperTable5Row:
    """One row of the paper's Table 5."""

    ssd_ratio: float
    brisc_ratio: float
    exec_overhead_pct: float
    jit_overhead_pct: float
    quality_overhead_pct: float


@dataclass(frozen=True)
class GeneratorKnobs:
    """Tuning parameters for the synthetic program generator."""

    constant_pool: int
    wide_constant_fraction: float
    max_locals: int
    max_params: int
    avg_statements: int
    loop_fraction: float
    if_fraction: float
    call_fraction: float
    global_fraction: float
    globals_count: int
    expr_depth: int
    #: exponent of the Zipf-flavoured constant draw; higher concentrates
    #: use on fewer pool entries (raises instruction re-use).
    constant_skew: float = 1.6


@dataclass(frozen=True)
class BenchmarkProfile:
    """Everything needed to synthesize and evaluate one benchmark."""

    name: str
    seed: int
    table1: PaperTable1Row
    table5: PaperTable5Row
    knobs: GeneratorKnobs
    #: iterations of the main driver loop (controls dynamic profile length)
    workload_iterations: int = 15


def _knobs(pool: int, locals_: int, stmts: int, *, wide: float = 0.15,
           params: int = 4, loops: float = 0.18, ifs: float = 0.25,
           calls: float = 0.15, globals_frac: float = 0.1,
           globals_count: int = 32, depth: int = 3,
           skew: float = 1.6) -> GeneratorKnobs:
    return GeneratorKnobs(
        constant_pool=pool,
        wide_constant_fraction=wide,
        max_locals=locals_,
        max_params=params,
        avg_statements=stmts,
        loop_fraction=loops,
        if_fraction=ifs,
        call_fraction=calls,
        global_fraction=globals_frac,
        globals_count=globals_count,
        expr_depth=depth,
        constant_skew=skew,
    )


#: The nine benchmarks, ordered as in the paper's tables (largest first).
PROFILES: List[BenchmarkProfile] = [
    BenchmarkProfile(
        name="word97",
        seed=971,
        table1=PaperTable1Row(5175500, 1427592, 124288, 11.5, 518351, 2.8, 16.6),
        table5=PaperTable5Row(0.45, 0.69, 3.2, 0.7, 2.5),
        knobs=_knobs(pool=34000, locals_=8, stmts=18, wide=0.06, globals_count=96, skew=2.6),
    ),
    BenchmarkProfile(
        name="gcc",
        seed=263,
        table1=PaperTable1Row(747436, 194501, 22946, 8.4, 78413, 2.5, 12.5),
        table5=PaperTable5Row(0.49, 0.57, 9.1, 0.4, 8.7),
        knobs=_knobs(pool=5600, locals_=9, stmts=16, wide=0.08, globals_count=64, skew=2.4),
    ),
    BenchmarkProfile(
        name="vortex",
        seed=400,
        table1=PaperTable1Row(400040, 97931, 11828, 8.3, 34657, 2.8, 12.8),
        table5=PaperTable5Row(0.37, 0.55, 7.7, 0.4, 7.3),
        knobs=_knobs(pool=2400, locals_=8, stmts=17, wide=0.07, globals_count=64, skew=2.4),
    ),
    BenchmarkProfile(
        name="perl",
        seed=239,
        table1=PaperTable1Row(238950, 75270, 11664, 6.5, 34043, 2.2, 9.5),
        table5=PaperTable5Row(0.57, 0.85, 8.6, 0.3, 8.3),
        knobs=_knobs(pool=4200, locals_=10, stmts=15, wide=0.12, globals_count=48),
    ),
    BenchmarkProfile(
        name="go",
        seed=181,
        table1=PaperTable1Row(180838, 36398, 6133, 5.9, 17568, 2.1, 10.0),
        table5=PaperTable5Row(0.42, 0.60, 5.5, 0.2, 5.3),
        knobs=_knobs(pool=2300, locals_=9, stmts=16, wide=0.10, globals_count=48),
    ),
    BenchmarkProfile(
        name="ijpeg",
        seed=136,
        table1=PaperTable1Row(136070, 31057, 7893, 3.9, 19207, 1.6, 8.5),
        table5=PaperTable5Row(0.50, 0.60, 8.1, 0.5, 7.6),
        knobs=_knobs(pool=7000, locals_=12, stmts=15, wide=0.28, globals_count=48,
                     depth=4, skew=1.0),
    ),
    BenchmarkProfile(
        name="m88ksim",
        seed=119,
        table1=PaperTable1Row(119782, 21957, 5865, 3.7, 11403, 1.9, 3.4),
        table5=PaperTable5Row(0.41, 0.49, 7.4, 0.3, 7.1),
        knobs=_knobs(pool=5600, locals_=12, stmts=14, wide=0.28, globals_count=40,
                     depth=4, skew=1.0),
    ),
    BenchmarkProfile(
        name="xlisp",
        seed=75,
        table1=PaperTable1Row(75942, 13414, 1860, 7.2, 5549, 2.4, 7.4),
        table5=PaperTable5Row(0.43, 0.59, 5.1, 0.2, 4.9),
        knobs=_knobs(pool=550, locals_=6, stmts=13, wide=0.05, globals_count=24, skew=2.8),
    ),
    BenchmarkProfile(
        name="compress",
        seed=7,
        table1=PaperTable1Row(7234, 1411, 591, 2.4, 1032, 1.4, 5.2),
        table5=PaperTable5Row(0.58, 0.57, 4.3, 0.2, 4.1),
        knobs=_knobs(pool=520, locals_=10, stmts=12, wide=0.30, globals_count=16,
                     depth=4, skew=1.0),
    ),
]

PROFILE_BY_NAME: Dict[str, BenchmarkProfile] = {p.name: p for p in PROFILES}

#: Paper Table 5 averages (the "Average" row).
PAPER_AVERAGE_SSD_RATIO = 0.47
PAPER_AVERAGE_BRISC_RATIO = 0.61
PAPER_AVERAGE_EXEC_OVERHEAD_PCT = 6.6
PAPER_AVERAGE_JIT_OVERHEAD_PCT = 0.4
PAPER_AVERAGE_QUALITY_OVERHEAD_PCT = 6.2

#: Paper Table 6: (buffer ratio, MB JIT-translated, hit rate %), word97.
PAPER_TABLE6 = [
    (0.200, 208.0, 91.31),
    (0.250, 119.1, 94.35),
    (0.275, 53.2, 99.83),
    (0.300, 13.5, 99.87),
    (0.325, 9.3, 99.89),
    (0.350, 7.4, 99.89),
    (0.400, 6.5, 99.93),
    (0.450, 6.1, 99.95),
    (0.500, 5.3, 99.96),
]

#: Section 3 narrative numbers for Figure 3 / the word97 story.
PAPER_WORD97_THIRD_BUFFER_OVERHEAD_PCT = 27.0
PAPER_REGEN_INFRASTRUCTURE_OVERHEAD_PCT = 14.1
PAPER_SSD_COPY_PHASE_MBPS = 12.5
PAPER_SSD_DICT_PHASE_MBPS = 7.8
PAPER_BRISC_TRANSLATE_MBPS = 5.0


def profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name."""
    if name not in PROFILE_BY_NAME:
        known = ", ".join(sorted(PROFILE_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}")
    return PROFILE_BY_NAME[name]
