"""Lowers the miniature AST to virtual-ISA code.

This is a deliberately *template-driven* compiler: every construct lowers
through a fixed code shape, the way production compilers of the paper's era
did.  Those fixed shapes are what make compiled code so dictionary-friendly
(Table 1's re-use frequencies); reproducing them faithfully matters more
here than clever code generation.

Calling convention (shared with ``repro.vm.liveness``):

* arguments in r2..r8 (max 7), return value in r1;
* r9..r15 are expression temporaries (caller-saved);
* locals and parameters live in stack slots off the frame pointer, so
  values survive calls without register shuffling;
* fp (r30) is saved/restored in the prologue/epilogue; the interpreter
  keeps return addresses on its own control stack, so ra is not spilled.

Comparisons other than equality lower to ``slt``/``sltu`` + ``beqz/bnez``
pairs (the MIPS idiom).  The optimized native backend fuses those pairs;
SSD's per-instruction JIT translation cannot — reproducing the paper's
"overhead due to reduced code quality" column structurally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..isa import Function, Instruction, Op, Program
from ..isa.opcodes import REG_FP, REG_RV, REG_SP
from . import ast

#: First byte of the global-cell region (absolute addressing off r0).
GLOBALS_BASE = 1024

_ARG_REGS = list(range(2, 9))
_TEMP_REGS = list(range(9, 16))

_BINOP_RR = {
    ast.BinOpKind.ADD: Op.ADD,
    ast.BinOpKind.SUB: Op.SUB,
    ast.BinOpKind.MUL: Op.MUL,
    ast.BinOpKind.DIV: Op.DIVS,
    ast.BinOpKind.MOD: Op.REMS,
    ast.BinOpKind.AND: Op.AND,
    ast.BinOpKind.OR: Op.OR,
    ast.BinOpKind.XOR: Op.XOR,
    ast.BinOpKind.SHL: Op.SHL,
    ast.BinOpKind.SHR: Op.SHR,
}
_BINOP_RI = {
    ast.BinOpKind.ADD: Op.ADDI,
    ast.BinOpKind.MUL: Op.MULI,
    ast.BinOpKind.AND: Op.ANDI,
    ast.BinOpKind.OR: Op.ORI,
    ast.BinOpKind.XOR: Op.XORI,
    ast.BinOpKind.SHL: Op.SHLI,
    ast.BinOpKind.SHR: Op.SHRI,
}

_IMM16_MIN, _IMM16_MAX = -(1 << 15), (1 << 15) - 1


class CompileError(ValueError):
    """Raised for ASTs the compiler cannot lower (too deep, too many params)."""


@dataclass
class _Emitter:
    """Accumulates instructions with patchable branch targets."""

    insns: List[Instruction]

    def emit(self, insn: Instruction) -> int:
        self.insns.append(insn)
        return len(self.insns) - 1

    def here(self) -> int:
        return len(self.insns)

    def patch(self, index: int, target: int) -> None:
        self.insns[index] = self.insns[index].replace_target(target)


class _FunctionCompiler:
    def __init__(self, fn: ast.FunctionDef, module: ast.Module) -> None:
        if fn.params > len(_ARG_REGS):
            raise CompileError(f"{fn.name}: more than {len(_ARG_REGS)} parameters")
        self.fn = fn
        self.module = module
        self.emitter = _Emitter(insns=[])
        self.slots = fn.params + fn.locals_count
        self.frame = 4 * self.slots + 8  # locals + saved fp (+ padding word)
        self.free_temps = list(reversed(_TEMP_REGS))

    # -- register allocation -------------------------------------------

    def alloc_temp(self) -> int:
        if not self.free_temps:
            raise CompileError(f"{self.fn.name}: expression too deep (out of temps)")
        return self.free_temps.pop()

    def free_temp(self, reg: int) -> None:
        if reg in _TEMP_REGS:
            self.free_temps.append(reg)

    # -- addressing ------------------------------------------------------

    def slot_offset(self, slot: int) -> int:
        if not 0 <= slot < self.slots:
            raise CompileError(f"{self.fn.name}: local slot {slot} out of range")
        return 4 * slot

    def global_offset(self, index: int) -> int:
        if not 0 <= index < self.module.globals_count:
            raise CompileError(f"{self.fn.name}: global {index} out of range")
        return GLOBALS_BASE + 4 * index

    # -- expressions ------------------------------------------------------

    def compile_expr(self, expr: ast.Expr, dest: int) -> None:
        emit = self.emitter.emit
        if isinstance(expr, ast.Const):
            emit(Instruction(op=Op.LI, rd=dest, imm=expr.value))
        elif isinstance(expr, ast.Local):
            emit(Instruction(op=Op.LW, rd=dest, rs1=REG_FP,
                             imm=self.slot_offset(expr.slot)))
        elif isinstance(expr, ast.Param):
            emit(Instruction(op=Op.LW, rd=dest, rs1=REG_FP,
                             imm=self.slot_offset(expr.index)))
        elif isinstance(expr, ast.Global):
            emit(Instruction(op=Op.LW, rd=dest, rs1=0,
                             imm=self.global_offset(expr.index)))
        elif isinstance(expr, ast.BinOp):
            self._compile_binop(expr, dest)
        else:
            raise CompileError(f"unknown expression node {expr!r}")

    def _compile_binop(self, expr: ast.BinOp, dest: int) -> None:
        emit = self.emitter.emit
        right = expr.right
        if (isinstance(right, ast.Const) and expr.kind in _BINOP_RI
                and _IMM16_MIN <= right.value <= _IMM16_MAX):
            self.compile_expr(expr.left, dest)
            emit(Instruction(op=_BINOP_RI[expr.kind], rd=dest, rs1=dest,
                             imm=right.value))
            return
        if (isinstance(right, ast.Const) and expr.kind is ast.BinOpKind.SUB
                and _IMM16_MIN < right.value <= _IMM16_MAX):
            self.compile_expr(expr.left, dest)
            emit(Instruction(op=Op.ADDI, rd=dest, rs1=dest, imm=-right.value))
            return
        self.compile_expr(expr.left, dest)
        temp = self.alloc_temp()
        self.compile_expr(right, temp)
        emit(Instruction(op=_BINOP_RR[expr.kind], rd=dest, rs1=dest, rs2=temp))
        self.free_temp(temp)

    # -- conditions -------------------------------------------------------

    def compile_branch(self, cond: ast.Cmp, *, jump_if: bool) -> int:
        """Emit code that jumps when ``cond`` evaluates to ``jump_if``.

        Returns the emitted branch's instruction index for later patching.
        """
        left = self.alloc_temp()
        self.compile_expr(cond.left, left)
        kind = cond.kind
        emit = self.emitter.emit

        if kind in (ast.CmpKind.EQ, ast.CmpKind.NE):
            want_eq = (kind is ast.CmpKind.EQ) == jump_if
            if isinstance(cond.right, ast.Const) and cond.right.value == 0:
                op = Op.BEQZ if want_eq else Op.BNEZ
                index = emit(Instruction(op=op, rs1=left, target=0))
            else:
                right = self.alloc_temp()
                self.compile_expr(cond.right, right)
                op = Op.BEQ if want_eq else Op.BNE
                index = emit(Instruction(op=op, rs1=left, rs2=right, target=0))
                self.free_temp(right)
            self.free_temp(left)
            return index

        # Ordered comparisons: the MIPS slt idiom.  LT jumps on the slt
        # result; GE jumps on its negation.
        right = self.alloc_temp()
        self.compile_expr(cond.right, right)
        slt_op = Op.SLTU if kind in (ast.CmpKind.LTU, ast.CmpKind.GEU) else Op.SLT
        flag = self.alloc_temp()
        emit(Instruction(op=slt_op, rd=flag, rs1=left, rs2=right))
        is_lt = kind in (ast.CmpKind.LT, ast.CmpKind.LTU)
        branch_op = Op.BNEZ if is_lt == jump_if else Op.BEQZ
        index = emit(Instruction(op=branch_op, rs1=flag, target=0))
        self.free_temp(flag)
        self.free_temp(right)
        self.free_temp(left)
        return index

    # -- statements -------------------------------------------------------

    def compile_stmt(self, stmt: ast.Stmt, epilogue_patches: List[int]) -> None:
        emit = self.emitter.emit
        if isinstance(stmt, ast.Assign):
            temp = self.alloc_temp()
            self.compile_expr(stmt.value, temp)
            if isinstance(stmt.dest, ast.Local):
                emit(Instruction(op=Op.SW, rs1=REG_FP, rs2=temp,
                                 imm=self.slot_offset(stmt.dest.slot)))
            else:
                emit(Instruction(op=Op.SW, rs1=0, rs2=temp,
                                 imm=self.global_offset(stmt.dest.index)))
            self.free_temp(temp)
        elif isinstance(stmt, ast.CallAssign):
            if len(stmt.args) > len(_ARG_REGS):
                raise CompileError(f"{self.fn.name}: too many call arguments")
            for position, arg in enumerate(stmt.args):
                self.compile_expr(arg, _ARG_REGS[position])
            emit(Instruction(op=Op.CALL, target=stmt.callee))
            emit(Instruction(op=Op.SW, rs1=REG_FP, rs2=REG_RV,
                             imm=self.slot_offset(stmt.dest.slot)))
        elif isinstance(stmt, ast.If):
            to_else = self.compile_branch(stmt.cond, jump_if=False)
            for inner in stmt.then_body:
                self.compile_stmt(inner, epilogue_patches)
            if stmt.else_body:
                to_end = emit(Instruction(op=Op.JMP, target=0))
                self.emitter.patch(to_else, self.emitter.here())
                for inner in stmt.else_body:
                    self.compile_stmt(inner, epilogue_patches)
                self.emitter.patch(to_end, self.emitter.here())
            else:
                self.emitter.patch(to_else, self.emitter.here())
        elif isinstance(stmt, ast.CountedLoop):
            offset = self.slot_offset(stmt.counter.slot)
            temp = self.alloc_temp()
            emit(Instruction(op=Op.LI, rd=temp, imm=0))
            emit(Instruction(op=Op.SW, rs1=REG_FP, rs2=temp, imm=offset))
            self.free_temp(temp)
            head = self.emitter.here()
            exit_branch = self.compile_branch(
                ast.Cmp(ast.CmpKind.LT, stmt.counter, stmt.count), jump_if=False)
            for inner in stmt.body:
                self.compile_stmt(inner, epilogue_patches)
            temp = self.alloc_temp()
            emit(Instruction(op=Op.LW, rd=temp, rs1=REG_FP, imm=offset))
            emit(Instruction(op=Op.ADDI, rd=temp, rs1=temp, imm=1))
            emit(Instruction(op=Op.SW, rs1=REG_FP, rs2=temp, imm=offset))
            self.free_temp(temp)
            emit(Instruction(op=Op.JMP, target=head))
            self.emitter.patch(exit_branch, self.emitter.here())
        elif isinstance(stmt, ast.While):
            head = self.emitter.here()
            exit_branch = self.compile_branch(stmt.cond, jump_if=False)
            for inner in stmt.body:
                self.compile_stmt(inner, epilogue_patches)
            emit(Instruction(op=Op.JMP, target=head))
            self.emitter.patch(exit_branch, self.emitter.here())
        elif isinstance(stmt, ast.Print):
            self.compile_expr(stmt.value, REG_RV)
            emit(Instruction(op=Op.TRAP, imm=1))
        elif isinstance(stmt, ast.Return):
            self.compile_expr(stmt.value, REG_RV)
            epilogue_patches.append(emit(Instruction(op=Op.JMP, target=0)))
        else:
            raise CompileError(f"unknown statement node {stmt!r}")

    # -- whole function ---------------------------------------------------

    def compile(self) -> Function:
        emit = self.emitter.emit
        # Prologue: allocate frame, save fp, establish new fp, spill params.
        emit(Instruction(op=Op.ADDI, rd=REG_SP, rs1=REG_SP, imm=-self.frame))
        emit(Instruction(op=Op.SW, rs1=REG_SP, rs2=REG_FP, imm=self.frame - 4))
        emit(Instruction(op=Op.MOV, rd=REG_FP, rs1=REG_SP))
        for position in range(self.fn.params):
            emit(Instruction(op=Op.SW, rs1=REG_FP, rs2=_ARG_REGS[position],
                             imm=self.slot_offset(position)))
        epilogue_patches: List[int] = []
        for stmt in self.fn.body:
            self.compile_stmt(stmt, epilogue_patches)
        # Functions without a trailing return yield 0.
        if not (self.fn.body and isinstance(self.fn.body[-1], ast.Return)):
            emit(Instruction(op=Op.LI, rd=REG_RV, imm=0))
        epilogue = self.emitter.here()
        for index in epilogue_patches:
            self.emitter.patch(index, epilogue)
        emit(Instruction(op=Op.LW, rd=REG_FP, rs1=REG_SP, imm=self.frame - 4))
        emit(Instruction(op=Op.ADDI, rd=REG_SP, rs1=REG_SP, imm=self.frame))
        emit(Instruction(op=Op.RET))
        return Function(name=self.fn.name, insns=self.emitter.insns)


def compile_function(fn: ast.FunctionDef, module: ast.Module) -> Function:
    """Compile one function definition."""
    return _FunctionCompiler(fn, module).compile()


def compile_module(module: ast.Module) -> Program:
    """Compile ``module`` into a validated :class:`Program`."""
    functions = [compile_function(fn, module) for fn in module.functions]
    program = Program(name=module.name, functions=functions, entry=0)
    from ..isa import validate_program

    validate_program(program)
    return program
