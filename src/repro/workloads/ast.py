"""A miniature imperative AST.

The paper's benchmarks (Word97, the spec95 suite) are compiler output, and
SSD's effectiveness comes from the idioms compilers emit over and over
(Table 1).  We cannot redistribute those binaries, so we regenerate the
*phenomenon*: a random-program generator builds ASTs in this little
language and ``repro.workloads.compiler`` lowers them with fixed code
templates — producing exactly the kind of instruction-sequence re-use the
paper measures.

The language: 32-bit integers, scalar locals, per-program global cells,
counted and conditional loops, non-recursive calls, and a ``print``
primitive so every program produces observable output (the compression
round-trip oracle compares outputs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union


class BinOpKind(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    AND = "&"
    OR = "|"
    XOR = "^"
    SHL = "<<"
    SHR = ">>"


class CmpKind(enum.Enum):
    EQ = "=="
    NE = "!="
    LT = "<"
    GE = ">="
    LTU = "<u"
    GEU = ">=u"


# --- expressions -----------------------------------------------------------


@dataclass(frozen=True)
class Const:
    value: int


@dataclass(frozen=True)
class Local:
    """A scalar local variable, identified by slot index."""

    slot: int


@dataclass(frozen=True)
class Param:
    """The n-th function parameter (0-based)."""

    index: int


@dataclass(frozen=True)
class Global:
    """A program-wide global cell, identified by index."""

    index: int


@dataclass(frozen=True)
class BinOp:
    kind: BinOpKind
    left: "Expr"
    right: "Expr"


Expr = Union[Const, Local, Param, Global, BinOp]


@dataclass(frozen=True)
class Cmp:
    """A comparison used as a statement condition."""

    kind: CmpKind
    left: Expr
    right: Expr


# --- statements ------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    dest: Union[Local, Global]
    value: Expr


@dataclass(frozen=True)
class CallAssign:
    """``dest = callee(args...)`` — calls only appear at statement level."""

    dest: Local
    callee: int  # function index within the Module
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class If:
    cond: Cmp
    then_body: Tuple["Stmt", ...]
    else_body: Tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class CountedLoop:
    """``for counter in 0..count: body`` with a dedicated counter local."""

    counter: Local
    count: Expr
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class While:
    """Guarded loop; generator guarantees termination via its condition."""

    cond: Cmp
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class Print:
    value: Expr


@dataclass(frozen=True)
class Return:
    value: Expr


Stmt = Union[Assign, CallAssign, If, CountedLoop, While, Print, Return]


# --- functions and modules --------------------------------------------------


@dataclass
class FunctionDef:
    name: str
    params: int
    locals_count: int
    body: Tuple[Stmt, ...]


@dataclass
class Module:
    """A whole source program: functions (index 0 is the entry), globals."""

    name: str
    functions: List[FunctionDef] = field(default_factory=list)
    globals_count: int = 0


def walk_statements(body: Sequence[Stmt]):
    """Yield every statement in ``body``, recursively."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)
        elif isinstance(stmt, (CountedLoop, While)):
            yield from walk_statements(stmt.body)


def walk_expressions(expr: Expr):
    """Yield every node of ``expr``, recursively."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expressions(expr.left)
        yield from walk_expressions(expr.right)


def expression_depth(expr: Expr) -> int:
    if isinstance(expr, BinOp):
        return 1 + max(expression_depth(expr.left), expression_depth(expr.right))
    return 1
