"""First-order markov next-access prediction.

One predictor class serves every layer: the code server learns
``(container, findex) -> next`` transitions from its request stream,
``RemoteProgram``/``LazyProgram`` learn local function-to-function
transitions, and container profile hints (``repro.core.hints``) seed
the table so the very first replay of a profiled workload already
predicts.

The table is bounded both ways: at most ``max_states`` source states
(oldest-observed evicted first) and at most ``max_successors``
successors per state (lightest dropped), so an adversarial or
high-cardinality stream cannot grow it without bound.  All methods are
thread-safe — the server observes from the event loop while clients
observe from worker threads.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..obs import REGISTRY

_PREDICTIONS = REGISTRY.counter(
    "prefetch_predictions_total",
    "Next-access predictions produced by markov predictors.")
_SEEDED_EDGES = REGISTRY.counter(
    "prefetch_seeded_edges_total",
    "Successor edges seeded into predictors from container profile hints.")
_CLIENT_FETCHES = REGISTRY.counter(
    "prefetch_client_fetches_total",
    "Functions fetched ahead of use by client-side prefetch.")

DEFAULT_MAX_STATES = 4096
DEFAULT_MAX_SUCCESSORS = 8


def record_client_fetches(count: int) -> None:
    """Count client-side prefetch fetches (RemoteProgram/LazyProgram)."""
    if count > 0:
        _CLIENT_FETCHES.inc(count)


class MarkovPredictor:
    """Bounded first-order transition table over hashable access keys."""

    def __init__(self, max_states: int = DEFAULT_MAX_STATES,
                 max_successors: int = DEFAULT_MAX_SUCCESSORS) -> None:
        if max_states <= 0 or max_successors <= 0:
            raise ValueError("max_states and max_successors must be positive")
        self._max_states = max_states
        self._max_successors = max_successors
        self._table: "OrderedDict[Hashable, Counter]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)

    def _successors(self, src: Hashable) -> Counter:
        successors = self._table.get(src)
        if successors is None:
            while len(self._table) >= self._max_states:
                self._table.popitem(last=False)
            successors = self._table[src] = Counter()
        return successors

    def observe(self, src: Hashable, dst: Hashable,
                weight: int = 1) -> None:
        """Record one observed ``src -> dst`` transition."""
        if src == dst or weight <= 0:
            return
        with self._lock:
            successors = self._successors(src)
            successors[dst] += weight
            if len(successors) > self._max_successors:
                for key, _ in successors.most_common()[self._max_successors:]:
                    del successors[key]

    def seed(self, edges: Iterable[Tuple[Hashable, Hashable, int]]) -> int:
        """Bulk-load weighted edges (container profile hints); returns
        the number of edges accepted."""
        seeded = 0
        for src, dst, weight in edges:
            self.observe(src, dst, weight=max(1, weight))
            seeded += 1
        if seeded:
            _SEEDED_EDGES.inc(seeded)
        return seeded

    def predict(self, src: Hashable, count: int = 2) -> List[Hashable]:
        """The up-to-``count`` most likely successors of ``src``,
        most likely first; empty when the state was never observed."""
        if count <= 0:
            return []
        with self._lock:
            successors = self._table.get(src)
            if not successors:
                return []
            ranked = [dst for dst, _ in successors.most_common(count)]
        _PREDICTIONS.inc(len(ranked))
        return ranked

    def predict_chain(self, src: Hashable, count: int = 2) -> List[Hashable]:
        """Walk the most-likely successor chain transitively, collecting
        up to ``count`` distinct keys.

        Where :meth:`predict` ranks the immediate successors of ``src``,
        this follows the prediction forward — successor of successor —
        so a prefetcher issuing the result gets ``count`` requests of
        lead time instead of one.  When the top successor loops back on
        something already collected, the walk falls through to the
        next-ranked sibling; it stops early at a dead end.
        """
        if count <= 0:
            return []
        out: List[Hashable] = []
        seen = {src}
        frontier = src
        with self._lock:
            while len(out) < count:
                successors = self._table.get(frontier)
                if not successors:
                    break
                advanced = False
                for dst, _ in successors.most_common():
                    if dst in seen:
                        continue
                    out.append(dst)
                    seen.add(dst)
                    frontier = dst
                    advanced = True
                    break
                if not advanced:
                    break
        if out:
            _PREDICTIONS.inc(len(out))
        return out

    def transitions(self, src: Hashable) -> Dict[Hashable, int]:
        """Snapshot of the successor weights for ``src`` (for tests
        and introspection)."""
        with self._lock:
            successors = self._table.get(src)
            return dict(successors) if successors else {}

    def clear(self) -> None:
        with self._lock:
            self._table.clear()


def predictor_from_hints(hot: Iterable[int],
                         edges: Iterable[Tuple[int, int, int]],
                         max_states: int = DEFAULT_MAX_STATES) -> "MarkovPredictor":
    """Build a predictor pre-seeded from a container's profile hints."""
    predictor = MarkovPredictor(max_states=max_states)
    predictor.seed(list(edges))
    # ``hot`` carries no ordering information beyond rank; chain the
    # ranks so a cold start at the hottest function still walks the
    # hot set in a sensible order when no edge says otherwise.
    ranked: List[int] = list(hot)
    chained = [(ranked[i], ranked[i + 1], 1) for i in range(len(ranked) - 1)]
    if chained:
        predictor.seed(chained)
    return predictor


__all__ = [
    "DEFAULT_MAX_STATES",
    "DEFAULT_MAX_SUCCESSORS",
    "MarkovPredictor",
    "predictor_from_hints",
    "record_client_fetches",
]
