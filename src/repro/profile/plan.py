"""Access profiles and layout planning.

:class:`AccessProfile` condenses an observed workload — a call trace
from ``repro.workloads.traces``, JIT runtime counters, or a serve-side
request log — into per-function heat and successor-edge weights.
:func:`build_plan` turns that into a :class:`LayoutPlan`: a placement
permutation that front-packs hot functions and co-locates co-called
ones (greedy affinity clustering over the edge graph), plus the
hot-set ranks and top edges that ship in the container's profile-hint
section (``repro.core.hints``).

Planning is purely advisory: the container parser restores logical
order, so a plan can never change decoded bytes — only where they sit
and what the serve stack prefetches.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..core.hints import ProfileHints

#: default size of the hot set recorded in hints, as a fraction of the
#: profiled functions (clamped to at least 1)
DEFAULT_HOT_FRACTION = 0.2
#: default cap on successor edges recorded in hints
DEFAULT_MAX_EDGES = 512


@dataclass(frozen=True)
class AccessProfile:
    """Function heat + successor transitions distilled from a workload."""

    counts: Mapping[int, int]
    edges: Mapping[Tuple[int, int], int] = field(default_factory=dict)

    @classmethod
    def from_trace(cls, trace: Sequence[int],
                   phase_boundaries: Sequence[int] = ()) -> "AccessProfile":
        """Profile a call trace (function index per call).

        ``phase_boundaries`` (call offsets where a new phase starts, as
        returned by :func:`repro.workloads.traces.generate_trace`) break
        successor edges across phase shifts — the last call of one phase
        does not predict the first call of the next.
        """
        counts: Counter = Counter(trace)
        edges: Counter = Counter()
        breaks = set(phase_boundaries)
        for pos in range(1, len(trace)):
            if pos in breaks:
                continue
            src, dst = trace[pos - 1], trace[pos]
            if src != dst:
                edges[(src, dst)] += 1
        return cls(counts=dict(counts), edges=dict(edges))

    @classmethod
    def from_counters(cls, counts: Mapping[int, int]) -> "AccessProfile":
        """Profile from per-function counters (e.g. JIT decode counts);
        no ordering information, so no successor edges."""
        return cls(counts={f: c for f, c in counts.items() if c > 0})

    def hot_ranked(self) -> Tuple[int, ...]:
        """Function indices by descending heat (index breaks ties)."""
        return tuple(sorted(self.counts,
                            key=lambda f: (-self.counts[f], f)))


@dataclass(frozen=True)
class LayoutPlan:
    """A placement decision plus the hints that ship with it.

    ``order[slot]`` is the logical function index placed at physical
    slot ``slot``; ``hot`` ranks the hot set hottest-first; ``edges``
    are ``(src, dst, weight)`` successor transitions, heaviest-first.
    """

    order: Tuple[int, ...]
    hot: Tuple[int, ...] = ()
    edges: Tuple[Tuple[int, int, int], ...] = ()

    @property
    def function_count(self) -> int:
        return len(self.order)

    @property
    def is_identity(self) -> bool:
        return all(slot == findex for slot, findex in enumerate(self.order))

    def hints(self) -> ProfileHints:
        """The advisory payload serialized into the container."""
        return ProfileHints(hot=self.hot, edges=self.edges)

    def validate(self, function_count: int) -> None:
        if sorted(self.order) != list(range(function_count)):
            raise ValueError(
                f"plan orders {len(self.order)} slots; not a permutation "
                f"of {function_count} functions")
        for findex in self.hot:
            if not 0 <= findex < function_count:
                raise ValueError(f"hot-set index {findex} out of range")
        for src, dst, _ in self.edges:
            if not (0 <= src < function_count and 0 <= dst < function_count):
                raise ValueError(f"edge ({src}, {dst}) out of range")

    @classmethod
    def identity(cls, function_count: int) -> "LayoutPlan":
        return cls(order=tuple(range(function_count)))


def _cluster_by_affinity(order_seed: Sequence[int],
                         edges: Mapping[Tuple[int, int], int],
                         heat: Mapping[int, int]) -> Tuple[int, ...]:
    """Greedy affinity clustering: merge the chains joined by the
    heaviest edges, then emit clusters hottest-first.

    Classic pairwise cluster agglomeration (Pettis–Hansen style): each
    function starts alone; edges are taken heaviest-first and merge the
    two clusters containing their endpoints by concatenation, so
    co-called functions end up adjacent in the final order.
    """
    cluster_of: Dict[int, int] = {f: i for i, f in enumerate(order_seed)}
    clusters: Dict[int, list] = {i: [f] for i, f in enumerate(order_seed)}
    ranked_edges = sorted(edges.items(),
                          key=lambda kv: (-kv[1], kv[0]))
    for (src, dst), _weight in ranked_edges:
        a, b = cluster_of.get(src), cluster_of.get(dst)
        if a is None or b is None or a == b:
            continue
        merged = clusters[a] + clusters[b]
        clusters[a] = merged
        for f in clusters.pop(b):
            cluster_of[f] = a
    def cluster_heat(members: Iterable[int]) -> int:
        return max(heat.get(f, 0) for f in members)
    ordered = sorted(clusters.values(),
                     key=lambda ms: (-cluster_heat(ms), ms[0]))
    return tuple(f for members in ordered for f in members)


def build_plan(profile: AccessProfile, function_count: int,
               hot_set_size: Optional[int] = None,
               max_edges: int = DEFAULT_MAX_EDGES) -> LayoutPlan:
    """Turn a profile into a deterministic :class:`LayoutPlan`.

    Profiled functions are affinity-clustered and front-packed by heat;
    functions the profile never saw keep their relative source order at
    the back.  Trace indices outside ``range(function_count)`` are
    ignored, so a trace recorded against a larger build still plans a
    smaller one.
    """
    heat = {f: c for f, c in profile.counts.items()
            if 0 <= f < function_count}
    ranked = tuple(sorted(heat, key=lambda f: (-heat[f], f)))
    edges = {(s, d): w for (s, d), w in profile.edges.items()
             if s in heat and d in heat}
    packed = _cluster_by_affinity(ranked, edges, heat)
    cold = tuple(f for f in range(function_count) if f not in heat)
    order = packed + cold
    if hot_set_size is None:
        hot_set_size = max(1, int(len(ranked) * DEFAULT_HOT_FRACTION))
    top_edges = tuple(
        (s, d, w) for (s, d), w in
        sorted(edges.items(), key=lambda kv: (-kv[1], kv[0]))[:max_edges])
    plan = LayoutPlan(order=order, hot=ranked[:hot_set_size],
                      edges=top_edges)
    plan.validate(function_count)
    return plan
