"""Access-profile-guided layout planning and prediction.

This package makes access locality a first-class input to the rest of
the stack:

* :class:`AccessProfile` — per-function heat + successor edges
  distilled from a call trace (``repro.workloads.traces``), JIT
  runtime counters, or any ``(findex, ...)`` access log;
* :func:`build_plan` / :class:`LayoutPlan` — deterministic placement
  planning: hot functions front-packed, co-called functions co-located
  by greedy affinity clustering; the plan's advisory half (hot-set
  ranks + successor edges) ships in the container's profile-hint
  section (``repro.core.hints``, see docs/LAYOUT.md);
* :class:`MarkovPredictor` — the bounded next-access predictor the
  serve cache, ``RemoteProgram`` and ``LazyProgram`` use for
  prefetching, seedable from those same hints.

``repro.core.compressor.compress(..., plan=...)`` consumes a
:class:`LayoutPlan`; decode output is byte-identical whatever the plan.
"""

from .markov import (
    MarkovPredictor,
    predictor_from_hints,
    record_client_fetches,
)
from .plan import (
    DEFAULT_HOT_FRACTION,
    DEFAULT_MAX_EDGES,
    AccessProfile,
    LayoutPlan,
    build_plan,
)

__all__ = [
    "DEFAULT_HOT_FRACTION",
    "DEFAULT_MAX_EDGES",
    "AccessProfile",
    "LayoutPlan",
    "MarkovPredictor",
    "build_plan",
    "predictor_from_hints",
    "record_client_fetches",
]
