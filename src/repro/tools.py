"""``ssd`` — file-level command line tools.

A downstream user's interface to the library without writing Python::

    ssd compress  program.asm -o program.ssd     # assemble + compress
    ssd compress  bench:xlisp@0.25 -o xlisp.ssd  # synthetic benchmark
    ssd compress  a.asm -o a.ssd --codec brisc   # any registered codec
    ssd codecs    [--json]                       # list registered codecs
    ssd decompress program.ssd -o program.asm    # back to assembly text
    ssd inspect   program.ssd [--json]           # sections, dictionary, stats
    ssd run       program.ssd [--lazy]           # execute in the VM
    ssd verify    program.ssd [--json]           # integrity report (CRCs)
    ssd verify    program.ssd program.asm        # full source comparison
    ssd fuzz      program.ssd --cases 500        # fault-injection sweep
    ssd delta make  old.ssd new.ssd -o p.ssdp    # version diff as a patch
    ssd delta apply old.ssd p.ssdp -o new.ssd    # verified reconstruction
    ssd delta push  HOST:PORT old.ssd new.ssd    # upload + measure wire cost
    ssd serve     --port 7777 --preload a.ssd    # async code server
    ssd client    HOST:PORT run a.ssd            # execute via the server
    ssd client    HOST:PORT stats                # server metrics snapshot
    ssd stats     HOST:PORT [--json]             # Prometheus text / JSON

Inputs are either assembly text files (see ``repro.isa.asm`` for the
format) or ``bench:<name>[@<scale>]`` references to the synthetic
benchmark suite.  ``--json`` on ``inspect``/``verify`` emits one
stable-keyed JSON object to stdout for machine consumers (the server's
admission path, CI).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from .codecs import (
    UnknownCodec,
    codec_ids,
    codec_of,
    compress_with,
    decompress_any,
    get_codec,
    integrity_report_any,
    open_any,
)
from .core import compress, container_version, decompress, open_container
from .core.lazy import LazyProgram
from .isa import Program, assemble, disassemble, validate_program
from .perf import PhaseProfile
from .vm import native_size, run_program


class ToolError(ValueError):
    """User-facing CLI errors (bad inputs, bad files)."""


def _write_trace(path: str, root) -> None:
    """Write one finished root span tree as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(root.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote trace to {path}", file=sys.stderr)


def load_program(spec: str) -> Program:
    """Load a program from an asm file path or a ``bench:`` reference."""
    if spec.startswith("bench:"):
        reference = spec[len("bench:"):]
        if "@" in reference:
            name, _, scale_text = reference.partition("@")
            try:
                scale = float(scale_text)
            except ValueError:
                raise ToolError(f"bad scale in {spec!r}") from None
        else:
            name, scale = reference, 0.25
        from .workloads import profile as get_profile
        from .workloads import benchmark_program

        try:
            get_profile(name)
        except KeyError as exc:
            raise ToolError(str(exc)) from None
        return benchmark_program(name, scale=scale)
    try:
        with open(spec, "r", encoding="utf-8") as handle:
            return assemble(handle.read())
    except FileNotFoundError:
        raise ToolError(f"no such file: {spec}") from None


def cmd_compress(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from .obs import TRACER

    if args.jobs < 0:
        raise ToolError(f"--jobs must be >= 0, got {args.jobs}")
    try:
        get_codec(args.codec)
    except UnknownCodec as exc:
        raise ToolError(str(exc)) from None
    program = load_program(args.input)
    validate_program(program)
    profile = PhaseProfile() if args.profile or args.trace else None
    with ExitStack() as stack:
        root = None
        if args.trace:
            root = stack.enter_context(
                TRACER.span("cli.compress", input=args.input))
        if args.codec == "ssd":
            compressed = compress(program, codec=args.base_codec,
                                  max_len=args.max_len, jobs=args.jobs,
                                  profile=profile)
        else:
            compressed = compress_with(args.codec, program)
    with open(args.output, "wb") as handle:
        handle.write(compressed.data)
    x86 = native_size(program)
    print(f"{program.name}: {program.instruction_count} instructions, "
          f"native {x86} B -> {compressed.size} B via {compressed.codec_id} "
          f"({compressed.size / x86:.1%} of native)")
    if args.profile:
        print(profile.format(title="compress phases"), file=sys.stderr)
    if args.trace:
        _write_trace(args.trace, root)
    return 0


def cmd_decompress(args: argparse.Namespace) -> int:
    profile = PhaseProfile() if args.profile else None
    with open(args.input, "rb") as handle:
        data = handle.read()
    if codec_of(data) == "ssd":
        program = decompress(data, profile=profile)
    else:
        # Non-SSD codecs have no phase structure to profile.
        program = decompress_any(data)
    if profile is not None:
        print(profile.format(title="decompress phases"), file=sys.stderr)
    text = disassemble(program)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(program.functions)} functions to {args.output}")
    else:
        print(text)
    return 0


def _inspect_json(data: bytes, reader, function: Optional[int]) -> dict:
    """Stable-keyed machine-readable form of ``ssd inspect``."""
    sections = reader.sections
    payload = {
        "program": sections.program_name,
        "codec": reader.codec_id,
        "codec_wire_id": get_codec(reader.codec_id).wire_id,
        "container_bytes": len(data),
        "format_version": container_version(data),
        "container_id": reader.container_hash,
        "entry": sections.entry,
        "entry_name": (sections.function_names[sections.entry]
                       if sections.function_names else None),
        "functions": len(sections.function_names),
        "function_names": list(sections.function_names),
        "segments": [
            {
                "index": sindex,
                "base_entries": len(layout.addr_bases),
                "sequence_nodes": sum(
                    1 for path in layout.paths_of.values() if len(path) > 1),
            }
            for sindex, layout in enumerate(reader.layouts)
        ],
        "sections": dict(sorted(sections.section_sizes().items())),
    }
    hints = reader.profile_hints
    if sections.function_order is not None or hints is not None:
        hot = list(hints.hot) if hints is not None else []
        payload["profile"] = {
            "reordered": sections.function_order is not None,
            "hot_set_size": len(hot),
            "hot_functions": [
                sections.function_names[findex]
                for findex in hot[:10]
                if 0 <= findex < len(sections.function_names)
            ],
            "successor_edges": len(hints.edges) if hints is not None else 0,
        }
    if function is not None:
        if not 0 <= function < reader.function_count:
            raise ToolError(f"function index {function} out of range")
        payload["function"] = {
            "index": function,
            "name": sections.function_names[function],
            "instructions": [insn.render() for insn
                             in reader.function_instructions(function)],
        }
    return payload


def _inspect_generic_json(data: bytes, reader, function: Optional[int]) -> dict:
    """``ssd inspect --json`` for codecs without SSD's section surface."""
    names = list(reader.function_names)
    payload = {
        "program": reader.program_name,
        "codec": reader.codec_id,
        "codec_wire_id": get_codec(reader.codec_id).wire_id,
        "container_bytes": len(data),
        "format_version": container_version(data),
        "container_id": reader.container_hash,
        "entry": reader.entry,
        "entry_name": names[reader.entry] if names else None,
        "functions": reader.function_count,
        "function_names": names,
    }
    if function is not None:
        if not 0 <= function < reader.function_count:
            raise ToolError(f"function index {function} out of range")
        payload["function"] = {
            "index": function,
            "name": names[function],
            "instructions": [insn.render() for insn
                             in reader.function(function).insns],
        }
    return payload


def _inspect_generic(data: bytes, reader, args: argparse.Namespace) -> int:
    """Human-readable inspect for non-SSD codec containers."""
    if args.json:
        print(json.dumps(_inspect_generic_json(data, reader, args.function),
                         sort_keys=True))
        return 0
    names = list(reader.function_names)
    print(f"program:   {reader.program_name}")
    print(f"codec:     {reader.codec_id}")
    print(f"functions: {reader.function_count} "
          f"(entry: {names[reader.entry]})")
    print(f"container: {len(data)} bytes")
    if args.function is not None:
        findex = args.function
        if not 0 <= findex < reader.function_count:
            raise ToolError(f"function index {findex} out of range")
        print(f"\nfunction {findex} ({names[findex]}):")
        for insn in reader.function(findex).insns:
            print(f"    {insn.render()}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as handle:
        data = handle.read()
    if codec_of(data) != "ssd":
        return _inspect_generic(data, open_any(data), args)
    reader = open_container(data)
    sections = reader.sections
    if args.json:
        print(json.dumps(_inspect_json(data, reader, args.function),
                         sort_keys=True))
        return 0
    print(f"program:   {sections.program_name}")
    print(f"functions: {len(sections.function_names)} "
          f"(entry: {sections.function_names[sections.entry]})")
    print(f"segments:  {len(sections.segments)}")
    print(f"container: {len(data)} bytes")
    hints = reader.profile_hints
    if sections.function_order is not None or hints is not None:
        hot = len(hints.hot) if hints is not None else 0
        edges = len(hints.edges) if hints is not None else 0
        order = ("profile order" if sections.function_order is not None
                 else "source order")
        print(f"layout:    {order}, {hot} hot functions hinted, "
              f"{edges} successor edges")
    sizes = sections.section_sizes()
    for section, size in sorted(sizes.items(), key=lambda kv: -kv[1]):
        print(f"  {section:>14}: {size:>8} B")
    for sindex, layout in enumerate(reader.layouts):
        bases = len(layout.addr_bases)
        sequences = sum(1 for path in layout.paths_of.values() if len(path) > 1)
        print(f"segment {sindex}: {bases} base entries, "
              f"{sequences} sequence-tree nodes")
    if args.function is not None:
        findex = args.function
        if not 0 <= findex < reader.function_count:
            raise ToolError(f"function index {findex} out of range")
        print(f"\nfunction {findex} ({sections.function_names[findex]}):")
        for insn in reader.function_instructions(findex):
            print(f"    {insn.render()}")
    return 0


def _integrity_json(data: bytes) -> Tuple[dict, int]:
    """Stable-keyed machine-readable form of ``ssd verify`` (no source)."""
    report = integrity_report_any(data)
    payload = {
        "container_bytes": len(data),
        "format_version": report.version,
        "ok": report.ok,
        "error": report.error,
        "sections": [
            {
                "name": span.name,
                "offset": span.data_offset,
                "length": span.length,
                "crc_ok": span.crc_ok,
            }
            for span in report.spans
        ],
        "corrupt_sections": [span.name for span in report.corrupt_sections],
    }
    return payload, 0 if report.ok else 1


def _print_integrity(data: bytes) -> int:
    """Standalone integrity check: CRCs + structural walk, no source."""
    report = integrity_report_any(data)
    version = f"v{report.version}" if report.version else "unrecognized"
    print(f"container: {len(data)} bytes, format {version}")
    for span in report.spans:
        if span.crc_ok is None:
            status = "-" if report.version == 1 else "?"
        else:
            status = "ok" if span.crc_ok else "CORRUPT"
        print(f"  {span.name:>24}: {span.length:>8} B at {span.data_offset:<8}"
              f" crc {status}")
    if report.error is not None:
        print(f"CORRUPT: {report.error}", file=sys.stderr)
        return 1
    if report.corrupt_sections:
        names = ", ".join(span.name for span in report.corrupt_sections)
        print(f"CORRUPT sections: {names}", file=sys.stderr)
        return 1
    if report.version == 1:
        print("OK (structural only: v1 containers carry no checksums)")
    else:
        print("OK: all section and container checksums match")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Check container integrity, optionally against a source program."""
    with open(args.container, "rb") as handle:
        data = handle.read()
    if args.source is None:
        if args.json:
            payload, status = _integrity_json(data)
            print(json.dumps(payload, sort_keys=True))
            return status
        return _print_integrity(data)
    program = load_program(args.source)
    restored = decompress_any(data)
    mismatches = []
    if len(restored.functions) != len(program.functions):
        mismatches.append(
            f"function count: {len(program.functions)} vs {len(restored.functions)}")
    for findex, (a, b) in enumerate(zip(program.functions, restored.functions)):
        if a.insns != b.insns:
            first_bad = next(i for i, (x, y) in enumerate(zip(a.insns, b.insns))
                             if x != y) if len(a.insns) == len(b.insns) else "length"
            mismatches.append(f"function {findex} ({a.name}): differs at {first_bad}")
    outputs_match = None
    if not mismatches:
        baseline = run_program(program, fuel=args.fuel)
        candidate = run_program(restored, fuel=args.fuel)
        outputs_match = baseline.output == candidate.output
        if not outputs_match:
            mismatches.append("program outputs differ")
    if args.json:
        print(json.dumps({
            "container_bytes": len(data),
            "ok": not mismatches,
            "functions": len(program.functions),
            "mismatches": mismatches,
            "outputs_match": outputs_match,
            "output_values": (len(baseline.output)
                              if outputs_match else None),
        }, sort_keys=True))
        return 0 if not mismatches else 1
    if mismatches:
        for line in mismatches:
            print(f"MISMATCH: {line}", file=sys.stderr)
        return 1
    print(f"OK: {len(program.functions)} functions identical, "
          f"outputs match ({len(baseline.output)} values)")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Seeded fault-injection sweep against a container's decoder."""
    from .faults import sweep

    if args.cases <= 0:
        raise ToolError(f"--cases must be positive, got {args.cases}")
    try:
        get_codec(args.codec)
    except UnknownCodec as exc:
        raise ToolError(str(exc)) from None
    if args.input.startswith("bench:") or args.input.endswith(".asm"):
        data = compress_with(args.codec, load_program(args.input)).data
    else:
        try:
            with open(args.input, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise ToolError(f"no such file: {args.input}") from None
        if not data.startswith(b"SSD"):
            raise ToolError(f"{args.input} is not an SSD container")
    report = sweep(data, cases=args.cases, seed=args.seed,
                   decode=decompress_any)
    print(report.format())
    return 0 if report.ok else 1


def cmd_codecs(args: argparse.Namespace) -> int:
    """List every registered codec (the ``repro.codecs`` registry)."""
    rows = []
    for codec_id in codec_ids():
        codec = get_codec(codec_id)
        rows.append({"id": codec.codec_id,
                     "wire_id": codec.wire_id,
                     "description": codec.description})
    if args.json:
        print(json.dumps({"codecs": rows}, sort_keys=True))
        return 0
    for row in rows:
        wire = str(row["wire_id"]) if row["wire_id"] else "-"
        print(f"{row['id']:>10}  wire {wire:>2}  {row['description']}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from .obs import TRACER

    with open(args.input, "rb") as handle:
        data = handle.read()
    with ExitStack() as stack:
        root = None
        if args.trace:
            root = stack.enter_context(
                TRACER.span("cli.run", input=args.input, lazy=args.lazy))
        if args.lazy:
            program = LazyProgram(open_any(data))
        else:
            program = decompress_any(data)
        inputs = [int(v) for v in args.read] if args.read else None
        result = run_program(program, inputs=inputs, fuel=args.fuel)
    for value in result.output:
        print(value)
    print(f"[halted after {result.steps} steps]", file=sys.stderr)
    if args.lazy:
        print(f"[lazily decompressed {program.decompressed_count}/"
              f"{len(program.functions)} functions]", file=sys.stderr)
    if args.trace:
        _write_trace(args.trace, root)
    return 0


def _write_port_file(path: str, port: int) -> None:
    """Atomically publish the bound port (write temp file, then rename)."""
    import os

    temp_path = f"{path}.tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        handle.write(f"{port}\n")
    os.replace(temp_path, path)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the async code server in the foreground (Ctrl-C stops it)."""
    import asyncio

    from .serve import ContainerStore, ServerConfig, SSDServer

    if args.metrics_interval is not None and args.metrics_interval <= 0:
        raise ToolError("--metrics-interval must be positive")
    store = ContainerStore(root=args.store_dir)
    for path in args.preload or []:
        try:
            with open(path, "rb") as handle:
                container_id, _ = store.put(handle.read())
        except FileNotFoundError:
            raise ToolError(f"no such file: {path}") from None
        except ValueError as exc:
            raise ToolError(f"{path} rejected: {exc}") from None
        print(f"preloaded {path} as {container_id}", file=sys.stderr)
    if args.prefetch_depth < 0:
        raise ToolError("--prefetch-depth must be non-negative")
    config = ServerConfig(host=args.host, port=args.port,
                          max_concurrency=args.max_concurrency,
                          request_timeout=args.timeout,
                          cache_bytes=args.cache_bytes,
                          prefetch_depth=args.prefetch_depth,
                          cache_admission=args.cache_admission)
    server = SSDServer(store=store, config=config)

    async def main() -> None:
        import signal

        await server.start()
        if args.port_file:
            _write_port_file(args.port_file, server.port)
        print(f"ssd serve: listening on {args.host}:{server.port} "
              f"({len(store)} containers)", file=sys.stderr, flush=True)

        async def report_metrics() -> None:
            while True:
                await asyncio.sleep(args.metrics_interval)
                snapshot = server.metrics.snapshot(
                    cache_stats=server.cache.stats().as_dict(),
                    store_stats=store.stats())
                print(json.dumps(snapshot, sort_keys=True),
                      file=sys.stderr, flush=True)

        if args.metrics_interval is not None:
            asyncio.create_task(report_metrics())

        # SIGTERM drains gracefully: finish in-flight decodes, answer new
        # frames E_UNAVAILABLE (a router re-routes), then exit.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()

        async def _drain_and_stop() -> None:
            print("ssd serve: SIGTERM, draining...", file=sys.stderr,
                  flush=True)
            drained = await server.drain()
            print(f"ssd serve: drained={drained}", file=sys.stderr,
                  flush=True)
            stop.set()

        def _on_sigterm() -> None:
            loop.create_task(_drain_and_stop())

        try:
            loop.add_signal_handler(signal.SIGTERM, _on_sigterm)
        except (NotImplementedError, RuntimeError):
            pass  # platform without loop signal handlers
        await stop.wait()
        await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("ssd serve: stopped", file=sys.stderr)
    return 0


def _spawn_shard(index: int, host: str, work_dir: str,
                 store_dir: Optional[str], preload: List[str],
                 startup_timeout: float = 15.0):
    """Start one shard subprocess; returns ``(process, port)``.

    The shard is an ordinary ``ssd serve --port 0`` whose bound port is
    read back through ``--port-file`` (atomic write, so a partial file
    is never observed).
    """
    import os
    import subprocess
    import time as _time

    port_file = os.path.join(work_dir, f"shard-{index}.port")
    argv = [sys.executable, "-m", "repro.tools", "serve",
            "--host", host, "--port", "0", "--port-file", port_file]
    if store_dir:
        shard_store = os.path.join(store_dir, f"shard-{index}")
        os.makedirs(shard_store, exist_ok=True)
        argv += ["--store-dir", shard_store]
    for path in preload:
        argv += ["--preload", path]
    process = subprocess.Popen(argv)
    deadline = _time.monotonic() + startup_timeout
    while _time.monotonic() < deadline:
        if process.poll() is not None:
            raise ToolError(f"shard {index} exited with "
                            f"code {process.returncode} during startup")
        try:
            with open(port_file, "r", encoding="utf-8") as handle:
                return process, int(handle.read().strip())
        except (FileNotFoundError, ValueError):
            _time.sleep(0.05)
    process.terminate()
    raise ToolError(f"shard {index} did not report a port within "
                    f"{startup_timeout}s")


def cmd_cluster(args: argparse.Namespace) -> int:
    """Run a sharded cluster: N subprocess shards behind one router."""
    if args.action == "status":
        return _cluster_status(args)
    return _cluster_start(args)


def _cluster_start(args: argparse.Namespace) -> int:
    import asyncio
    import os
    import signal
    import tempfile
    from dataclasses import replace

    from .serve.router import ClusterRouter, RouterConfig

    if args.shards < 1:
        raise ToolError("--shards must be >= 1")
    if not 1 <= args.replication <= args.shards:
        raise ToolError(f"--replication must be in [1, {args.shards}]")
    if args.routers < 1:
        raise ToolError("--routers must be >= 1")
    if args.router_cache_bytes < 0:
        raise ToolError("--router-cache-bytes must be >= 0")

    processes = []
    with tempfile.TemporaryDirectory(prefix="ssd-cluster-") as work_dir:
        try:
            shards = {}
            shard_pids = {}
            for index in range(args.shards):
                process, port = _spawn_shard(
                    index, args.host, work_dir, args.store_dir,
                    args.preload or [])
                processes.append(process)
                shard_id = f"shard-{index}"
                shards[shard_id] = (args.host, port)
                shard_pids[shard_id] = process.pid
                print(f"ssd cluster: {shard_id} pid={process.pid} "
                      f"port={port}", file=sys.stderr, flush=True)

            config = RouterConfig(host=args.host, port=args.port,
                                  replication=args.replication,
                                  cache_bytes=args.router_cache_bytes)
            # The first router listens on --port; extra routers take
            # ephemeral ports (recorded in the state file) and gossip
            # health + vnode weights with the first over SYNC_STATE.
            routers = [ClusterRouter(shards, config=config)]
            for _ in range(1, args.routers):
                routers.append(ClusterRouter(
                    shards, config=replace(config, port=0)))

            async def main() -> None:
                for router in routers:
                    await router.start()
                peer_addresses = [(args.host, router.port)
                                  for router in routers]
                for router in routers:
                    router.set_peers(peer_addresses)
                first = routers[0]
                if args.port_file:
                    _write_port_file(args.port_file, first.port)
                state = {
                    "router": {"host": args.host, "port": first.port,
                               "pid": os.getpid()},
                    "routers": [
                        {"host": args.host, "port": router.port,
                         "pid": os.getpid()}
                        for router in routers
                    ],
                    "replication": args.replication,
                    "quorum": first.quorum,
                    "shards": [
                        {"shard_id": shard_id, "host": host, "port": port,
                         "pid": shard_pids[shard_id]}
                        for shard_id, (host, port) in sorted(shards.items())
                    ],
                }
                if args.state_file:
                    with open(args.state_file, "w", encoding="utf-8") as fh:
                        json.dump(state, fh, indent=2, sort_keys=True)
                        fh.write("\n")
                ports = ", ".join(str(router.port) for router in routers)
                print(f"ssd cluster: {len(routers)} router(s) on "
                      f"{args.host}:[{ports}] ({args.shards} shards, "
                      f"replication {args.replication}, quorum "
                      f"{first.quorum})",
                      file=sys.stderr, flush=True)
                stop = asyncio.Event()
                loop = asyncio.get_running_loop()
                for signum in (signal.SIGTERM, signal.SIGINT):
                    try:
                        loop.add_signal_handler(signum, stop.set)
                    except (NotImplementedError, RuntimeError):
                        pass
                await stop.wait()
                for router in routers:
                    await router.stop()

            try:
                asyncio.run(main())
            except KeyboardInterrupt:
                pass
            print("ssd cluster: stopped", file=sys.stderr)
            return 0
        finally:
            for process in processes:
                if process.poll() is None:
                    process.terminate()
            for process in processes:
                try:
                    process.wait(timeout=10.0)
                except Exception:  # noqa: BLE001 - last resort
                    process.kill()


def _cluster_status(args: argparse.Namespace) -> int:
    from .errors import ProtocolError, RemoteError
    from .serve import ServeClient

    if not args.state_file:
        raise ToolError("cluster status requires --state-file")
    try:
        with open(args.state_file, "r", encoding="utf-8") as handle:
            state = json.load(handle)
    except FileNotFoundError:
        raise ToolError(f"no such state file: {args.state_file}") from None
    except json.JSONDecodeError as exc:
        raise ToolError(f"bad state file: {exc}") from None

    def probe(host: str, port: int) -> dict:
        try:
            with ServeClient(host, port, timeout=args.timeout) as client:
                status = client.health()
                return {"reachable": True, "state": status.state_name,
                        "inflight": status.inflight,
                        "containers": status.containers}
        except (OSError, ProtocolError, RemoteError) as exc:
            return {"reachable": False, "error": str(exc)}

    routers = [dict(entry) for entry in
               state.get("routers") or [state.get("router", {})]]
    for router in routers:
        router["health"] = probe(router.get("host", "127.0.0.1"),
                                 int(router.get("port", 0)))
    shards = []
    for shard in state.get("shards", []):
        entry = dict(shard)
        entry["health"] = probe(shard["host"], int(shard["port"]))
        shards.append(entry)
    live = sum(1 for shard in shards if shard["health"]["reachable"])
    live_routers = sum(1 for router in routers
                       if router["health"]["reachable"])
    report = {
        "router": routers[0],
        "routers": routers,
        "live_routers": live_routers,
        "shards": shards,
        "live_shards": live,
        "quorum": state.get("quorum"),
        "above_quorum": (live >= state["quorum"]
                         if state.get("quorum") is not None else None),
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    healthy = live_routers > 0 and report["above_quorum"] is not False
    return 0 if healthy else 1


def _parse_address(text: str) -> Tuple[str, int]:
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ToolError(f"server address must be HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ToolError(f"bad port in {text!r}") from None
    return host, port


def _resolve_container(client, spec: str) -> str:
    """A client-side container reference: hex id or a .ssd file to upload."""
    if len(spec) == 64 and all(c in "0123456789abcdef" for c in spec.lower()):
        return spec.lower()
    try:
        with open(spec, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        raise ToolError(f"{spec!r} is neither a container id nor a file") \
            from None
    container_id, _, _ = client.put(data)
    return container_id


def cmd_client(args: argparse.Namespace) -> int:
    """Talk to a running ``ssd serve`` instance."""
    from .errors import RemoteError
    from .serve import RemoteProgram, ServeClient

    host, port = _parse_address(args.server)
    try:
        client = ServeClient(host, port, timeout=args.timeout,
                             retries=args.retries)
    except OSError as exc:
        raise ToolError(f"cannot connect to {args.server}: {exc}") from None
    try:
        if args.action == "stats":
            print(json.dumps(client.stats(), sort_keys=True))
            return 0
        if args.target is None:
            raise ToolError(f"client {args.action} requires a container "
                            "id or .ssd file")
        if args.action == "put":
            with open(args.target, "rb") as handle:
                container_id, count, entry = client.put(handle.read())
            print(container_id)
            print(f"{count} functions, entry {entry}", file=sys.stderr)
            return 0
        container_id = _resolve_container(client, args.target)
        if args.action == "get":
            meta = client.meta(container_id)
            if args.function is not None:
                function = client.function(container_id, args.function)
                print(f"func {function.name}")
                for insn in function.insns:
                    print(f"    {insn.render()}")
            else:
                print(f"program:   {meta.program_name}")
                print(f"functions: {meta.function_count} "
                      f"(entry: {meta.function_names[meta.entry]})")
                for findex, name in enumerate(meta.function_names):
                    print(f"  {findex:>4}: {name}")
            return 0
        if args.action == "run":
            program = RemoteProgram(client, container_id)
            inputs = [int(v) for v in args.read] if args.read else None
            result = run_program(program, inputs=inputs, fuel=args.fuel)
            for value in result.output:
                print(value)
            print(f"[halted after {result.steps} steps]", file=sys.stderr)
            print(f"[remotely fetched {program.decompressed_count}/"
                  f"{len(program.functions)} functions]", file=sys.stderr)
            return 0
        raise ToolError(f"unknown client action {args.action!r}")
    except RemoteError as exc:
        print(f"server error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        raise ToolError(str(exc)) from None
    finally:
        client.close()


def _read_binary(path: str) -> bytes:
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except FileNotFoundError:
        raise ToolError(f"no such file: {path}") from None


def cmd_delta(args: argparse.Namespace) -> int:
    """Version-to-version container patches (the code-update path)."""
    import hashlib

    from .delta import apply_patch, make_patch, patch_info
    from .errors import CorruptContainer

    if args.action == "make":
        base = _read_binary(args.base)
        target = _read_binary(args.target)
        patch = make_patch(base, target)
        with open(args.output, "wb") as handle:
            handle.write(patch)
        info = patch_info(patch)
        print(f"{args.output}: {len(patch)} B patch, full transfer "
              f"{len(target)} B ({len(patch) / len(target):.1%} on the wire)")
        print(f"  base:   {info.base_hex}", file=sys.stderr)
        print(f"  target: {info.target_hex}", file=sys.stderr)
        return 0

    if args.action == "apply":
        base = _read_binary(args.base)
        patch = _read_binary(args.patch)
        try:
            target = apply_patch(base, patch)
        except CorruptContainer as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        with open(args.output, "wb") as handle:
            handle.write(target)
        print(f"{args.output}: {len(target)} B, content id "
              f"{hashlib.sha256(target).hexdigest()}")
        return 0

    # push: upload both versions, then fetch the new one as a delta and
    # report bytes-on-wire against the full transfer it replaces.
    from .errors import RemoteError
    from .serve import ServeClient

    host, port = _parse_address(args.server)
    base = _read_binary(args.base)
    target = _read_binary(args.target)
    try:
        client = ServeClient(host, port, timeout=args.timeout,
                             retries=args.retries)
    except OSError as exc:
        raise ToolError(f"cannot connect to {args.server}: {exc}") from None
    try:
        base_id, _, _ = client.put(base)
        target_id, _, _ = client.put(target)
        patch = client.get_delta(target_id, base_id)
        rebuilt = apply_patch(base, patch)
        verified = hashlib.sha256(rebuilt).hexdigest() == target_id
        print(target_id)
        print(f"delta: {len(patch)} B on the wire vs {len(target)} B full "
              f"({len(patch) / len(target):.1%}); reconstruction "
              f"{'verified' if verified else 'MISMATCH'}", file=sys.stderr)
        return 0 if verified else 1
    except (RemoteError, CorruptContainer) as exc:
        print(f"server error: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()


def cmd_stats(args: argparse.Namespace) -> int:
    """Fetch a server's metrics: Prometheus text, or the JSON snapshot."""
    from .serve import ServeClient

    host, port = _parse_address(args.server)
    try:
        client = ServeClient(host, port, timeout=args.timeout)
    except OSError as exc:
        raise ToolError(f"cannot connect to {args.server}: {exc}") from None
    try:
        if args.json:
            print(json.dumps(client.stats(), sort_keys=True))
        else:
            sys.stdout.write(client.metrics_text())
    finally:
        client.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ssd", description="SSD program compression tools")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="assemble + compress to a .ssd file")
    p.add_argument("input", help="asm file or bench:<name>[@scale]")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--codec", default="ssd", metavar="ID",
                   help="registered codec id (see `ssd codecs`); "
                        "default: ssd")
    p.add_argument("--base-codec", choices=("lz", "delta"), default="lz",
                   help="SSD base-entry codec (ssd codec only)")
    p.add_argument("--max-len", type=int, default=4)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the parallel pipeline "
                        "(0 = all cores; output is identical to --jobs 1)")
    p.add_argument("--profile", action="store_true",
                   help="print per-phase timings to stderr")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write the span tree of this run as JSON to FILE")
    p.set_defaults(func=cmd_compress)

    p = sub.add_parser("decompress", help="decompress a .ssd file to assembly")
    p.add_argument("input")
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--profile", action="store_true",
                   help="print per-phase timings to stderr")
    p.set_defaults(func=cmd_decompress)

    p = sub.add_parser("inspect", help="show container structure and stats")
    p.add_argument("input")
    p.add_argument("--function", type=int, default=None,
                   help="also disassemble this function index")
    p.add_argument("--json", action="store_true",
                   help="emit one stable-keyed JSON object to stdout")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("verify",
                       help="check container integrity, or compare to source")
    p.add_argument("container")
    p.add_argument("source", nargs="?", default=None,
                   help="asm file or bench:<name>[@scale]; omit for a "
                        "checksum/structure integrity report")
    p.add_argument("--fuel", type=int, default=1_000_000)
    p.add_argument("--json", action="store_true",
                   help="emit one stable-keyed JSON object to stdout")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("fuzz",
                       help="run a seeded fault-injection sweep on a container")
    p.add_argument("input", help=".ssd file, asm file, or bench:<name>[@scale]")
    p.add_argument("--cases", type=int, default=500)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--codec", default="ssd", metavar="ID",
                   help="codec used to compress asm/bench inputs")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("codecs", help="list registered compression codecs")
    p.add_argument("--json", action="store_true",
                   help="emit one stable-keyed JSON object to stdout")
    p.set_defaults(func=cmd_codecs)

    p = sub.add_parser("run", help="execute a compressed program")
    p.add_argument("input")
    p.add_argument("--fuel", type=int, default=5_000_000)
    p.add_argument("--lazy", action="store_true",
                   help="decompress functions on first call")
    p.add_argument("--read", nargs="*", default=None,
                   help="values consumed by `trap 2`")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write the span tree of this run as JSON to FILE")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("serve", help="run the async SSD code server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7878,
                   help="TCP port (0 = ephemeral)")
    p.add_argument("--preload", nargs="*", default=None, metavar="FILE",
                   help=".ssd containers admitted at startup")
    p.add_argument("--store-dir", default=None,
                   help="directory to persist/load admitted containers")
    p.add_argument("--cache-bytes", type=int, default=64 << 20,
                   help="shared LRU budget over readers + hot functions")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request deadline in seconds")
    p.add_argument("--max-concurrency", type=int, default=8,
                   help="simultaneous decode threads")
    p.add_argument("--prefetch-depth", type=int, default=0,
                   help="markov prefetch: decode up to N predicted "
                        "successors after each GET_FUNCTION (0 = off)")
    p.add_argument("--cache-admission", action="store_true",
                   help="screen cache inserts under eviction pressure "
                        "with the ghost-list admission policy")
    p.add_argument("--metrics-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="print a JSON metrics snapshot to stderr "
                        "every SECONDS")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="atomically write the bound port to PATH once "
                        "listening (for scripts using --port 0)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("client", help="talk to a running ssd serve")
    p.add_argument("server", help="HOST:PORT of the server")
    p.add_argument("action", choices=("put", "get", "run", "stats"))
    p.add_argument("target", nargs="?", default=None,
                   help="container id (64-char hex) or .ssd file")
    p.add_argument("--function", type=int, default=None,
                   help="for get: fetch and disassemble one function")
    p.add_argument("--fuel", type=int, default=5_000_000)
    p.add_argument("--read", nargs="*", default=None,
                   help="values consumed by `trap 2`")
    p.add_argument("--timeout", type=float, default=30.0)
    p.add_argument("--retries", type=int, default=0,
                   help="retry idempotent requests up to N times with "
                        "exponential backoff (for flaky links or a "
                        "failing-over cluster); default: no retries")
    p.set_defaults(func=cmd_client)

    p = sub.add_parser("cluster",
                       help="run or inspect a sharded serve cluster")
    p.add_argument("action", choices=("start", "status"))
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7879,
                   help="router TCP port (0 = ephemeral)")
    p.add_argument("--shards", type=int, default=3,
                   help="shard subprocesses to spawn")
    p.add_argument("--replication", type=int, default=2,
                   help="replicas per container (1..shards)")
    p.add_argument("--routers", type=int, default=1,
                   help="front-end routers; the first binds --port, the "
                        "rest take ephemeral ports and gossip state "
                        "(see the state file for their addresses)")
    p.add_argument("--router-cache-bytes", type=int, default=0,
                   help="byte budget for the router response cache over "
                        "hot content-addressed GETs (0 = disabled)")
    p.add_argument("--preload", nargs="*", default=None, metavar="FILE",
                   help=".ssd containers admitted by every shard at startup")
    p.add_argument("--store-dir", default=None,
                   help="root directory for per-shard persistent stores")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="atomically write the router's bound port to PATH")
    p.add_argument("--state-file", default=None, metavar="PATH",
                   help="write cluster topology JSON (ports, pids) to PATH; "
                        "required for `cluster status`")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="status: per-probe deadline in seconds")
    p.set_defaults(func=cmd_cluster)

    p = sub.add_parser("delta",
                       help="make/apply/push version-to-version patches")
    delta_sub = p.add_subparsers(dest="action", required=True)

    d = delta_sub.add_parser("make", help="diff two containers into a patch")
    d.add_argument("base", help="old .ssd container")
    d.add_argument("target", help="new .ssd container")
    d.add_argument("-o", "--output", required=True, help="patch file (.ssdp)")
    d.set_defaults(func=cmd_delta)

    d = delta_sub.add_parser("apply",
                             help="apply a patch to its base container, "
                                  "verified by content hash")
    d.add_argument("base", help="the patch's declared base .ssd container")
    d.add_argument("patch", help="patch file from `ssd delta make`")
    d.add_argument("-o", "--output", required=True)
    d.set_defaults(func=cmd_delta)

    d = delta_sub.add_parser("push",
                             help="upload both versions, then fetch the new "
                                  "one as a delta and report bytes on the "
                                  "wire vs a full transfer")
    d.add_argument("server", help="HOST:PORT of ssd serve or cluster router")
    d.add_argument("base", help="old .ssd container file")
    d.add_argument("target", help="new .ssd container file")
    d.add_argument("--timeout", type=float, default=30.0)
    d.add_argument("--retries", type=int, default=0,
                   help="retry idempotent requests up to N times")
    d.set_defaults(func=cmd_delta)

    p = sub.add_parser("stats", help="fetch metrics from a running ssd serve")
    p.add_argument("server", help="HOST:PORT of the server")
    p.add_argument("--json", action="store_true",
                   help="print the STATS JSON snapshot instead of the "
                        "Prometheus text exposition")
    p.add_argument("--timeout", type=float, default=30.0)
    p.set_defaults(func=cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ToolError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
