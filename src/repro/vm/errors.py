"""Exception types for the virtual machine."""

from __future__ import annotations


class VMError(RuntimeError):
    """Base class for execution errors."""


class OutOfFuel(VMError):
    """Execution exceeded the caller-supplied step budget."""


class MemoryFault(VMError):
    """Load or store outside the machine's memory."""


class ControlFault(VMError):
    """Bad control transfer (call/jump target out of range, stack underflow)."""
