"""Peephole fusions that define the "optimized x86" baseline.

The paper measures all sizes and times against "optimized x86" code
produced by a production compiler, while SSD's JIT path converts *one VM
instruction at a time* (section 2.2.4: "the conversion is done by
translation of individual instructions, rather than optimizing
compilation").  That asymmetry is the source of Table 5's "overhead due to
reduced code quality".

We reproduce it structurally: the optimized backend may fuse adjacent VM
instructions inside a basic block when liveness proves it safe; the JIT
backend may not.  Four classic selections are implemented:

* **cmp-fuse** — ``slt/sltu/slti rT, …`` + ``beqz/bnez rT`` becomes a single
  compare-and-branch when ``rT`` dies at the branch.
* **addr-fold** — ``addi rT, rB, C`` + load/store with base ``rT`` folds the
  constant into the displacement when ``rT`` dies at the memory op.
* **li-fold** — ``li rT, C`` + a three-register ALU op using ``rT`` becomes
  the immediate ALU form when one exists and ``rT`` dies.
* **mov-fold** — ``mov rT, rS`` + a consumer reading ``rT`` renames the
  operand to ``rS`` when ``rT`` dies at the consumer.

Each fusion is recorded as (producer index, consumer index, kind); the
native backend lowers the pair as one unit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..isa import Function, Instruction, Kind, Op, basic_blocks, info
from ..isa.opcodes import REG_ZERO
from .liveness import live_out

_CMP_PRODUCERS = {Op.SLT, Op.SLTU}
_CMP_CONSUMERS = {Op.BEQZ, Op.BNEZ}
_MEM_OPS = {Op.LB, Op.LBU, Op.LH, Op.LHU, Op.LW, Op.SB, Op.SH, Op.SW}

#: ALU_RR opcode -> immediate-form opcode, for li-fold on the rs2 operand.
_IMM_FORM = {
    Op.ADD: Op.ADDI,
    Op.MUL: Op.MULI,
    Op.AND: Op.ANDI,
    Op.OR: Op.ORI,
    Op.XOR: Op.XORI,
    Op.SHL: Op.SHLI,
    Op.SHR: Op.SHRI,
    Op.SAR: Op.SARI,
    Op.SLT: Op.SLTI,
}
#: opcodes where li-fold may also hit the rs1 operand (commutative).
_COMMUTATIVE = {Op.ADD, Op.MUL, Op.AND, Op.OR, Op.XOR}

_I32_MIN, _I32_MAX = -(1 << 31), (1 << 31) - 1


class FusionKind(enum.Enum):
    CMP_BRANCH = "cmp_branch"
    ADDR_FOLD = "addr_fold"
    LI_FOLD = "li_fold"
    MOV_FOLD = "mov_fold"


@dataclass
class Fusion:
    producer: int
    consumer: int
    kind: FusionKind


@dataclass
class FusionPlan:
    """Result of peephole analysis over one function."""

    fusions: List[Fusion] = field(default_factory=list)
    #: indices of producer instructions absorbed into their consumer
    absorbed: Set[int] = field(default_factory=set)
    #: consumer index -> fusion
    by_consumer: Dict[int, Fusion] = field(default_factory=dict)

    def add(self, fusion: Fusion) -> None:
        self.fusions.append(fusion)
        self.absorbed.add(fusion.producer)
        self.by_consumer[fusion.consumer] = fusion


def plan_function(function: Function) -> FusionPlan:
    """Compute the safe fusions for ``function``."""
    plan = FusionPlan()
    insns = function.insns
    if not insns:
        return plan
    liveness = live_out(function)
    for block in basic_blocks(function):
        for i in range(block.start, block.end - 1):
            j = i + 1
            if i in plan.absorbed or j in plan.by_consumer or i in plan.by_consumer:
                continue
            fusion = _try_fuse(insns[i], insns[j], i, j, liveness)
            if fusion is not None:
                plan.add(fusion)
    return plan


def _dead_after(reg: int, consumer: int, liveness: List[Set[int]]) -> bool:
    return reg == REG_ZERO or reg not in liveness[consumer]


def _try_fuse(producer: Instruction, consumer: Instruction, i: int, j: int,
              liveness: List[Set[int]]) -> Optional[Fusion]:
    pmeta = info(producer.op)
    if not pmeta.uses_rd or producer.rd == REG_ZERO:
        return None
    temp = producer.rd
    if not _dead_after(temp, j, liveness):
        return None

    # cmp-fuse
    if producer.op in _CMP_PRODUCERS and consumer.op in _CMP_CONSUMERS:
        if consumer.rs1 == temp:
            return Fusion(i, j, FusionKind.CMP_BRANCH)

    # addr-fold
    if producer.op is Op.ADDI and consumer.op in _MEM_OPS and consumer.rs1 == temp:
        folded = producer.imm + consumer.imm
        reads_temp_as_value = info(consumer.op).uses_rs2 and consumer.rs2 == temp
        if _I32_MIN <= folded <= _I32_MAX and not reads_temp_as_value:
            return Fusion(i, j, FusionKind.ADDR_FOLD)

    # li-fold
    if producer.op is Op.LI and info(consumer.op).kind is Kind.ALU_RR:
        imm_ok = _I32_MIN <= producer.imm <= _I32_MAX
        if imm_ok and consumer.op in _IMM_FORM and consumer.rs2 == temp and consumer.rs1 != temp:
            return Fusion(i, j, FusionKind.LI_FOLD)
        if (imm_ok and consumer.op in _COMMUTATIVE and consumer.rs1 == temp
                and consumer.rs2 != temp):
            return Fusion(i, j, FusionKind.LI_FOLD)

    # mov-fold
    if producer.op is Op.MOV:
        cmeta = info(consumer.op)
        reads = []
        if cmeta.uses_rs1 and consumer.rs1 == temp:
            reads.append("rs1")
        if cmeta.uses_rs2 and consumer.rs2 == temp:
            reads.append("rs2")
        writes_temp = cmeta.uses_rd and consumer.rd == temp
        if reads and not writes_temp:
            return Fusion(i, j, FusionKind.MOV_FOLD)

    return None


def rewritten_consumer(producer: Instruction, consumer: Instruction,
                       kind: FusionKind) -> Instruction:
    """The single instruction a fused pair is equivalent to.

    Used by the optimized backend to lower the pair, and by tests to check
    semantic equivalence of the fusion rules.
    """
    if kind is FusionKind.CMP_BRANCH:
        # The fused unit is lowered directly as compare + conditional jump;
        # represent it as the equivalent two-register branch.
        negate = consumer.op is Op.BEQZ  # beqz on a '<' result means 'not <'
        if producer.op is Op.SLT:
            op = Op.BGE if negate else Op.BLT
            return Instruction(op=op, rs1=producer.rs1, rs2=producer.rs2,
                               target=consumer.target)
        op = Op.BGEU if negate else Op.BLTU
        return Instruction(op=op, rs1=producer.rs1, rs2=producer.rs2,
                           target=consumer.target)
    if kind is FusionKind.ADDR_FOLD:
        folded = producer.imm + consumer.imm
        return Instruction(op=consumer.op, rd=consumer.rd,
                           rs1=producer.rs1, rs2=consumer.rs2, imm=folded)
    if kind is FusionKind.LI_FOLD:
        if consumer.rs2 == producer.rd:
            return Instruction(op=_IMM_FORM[consumer.op], rd=consumer.rd,
                               rs1=consumer.rs1, imm=producer.imm)
        return Instruction(op=_IMM_FORM[consumer.op], rd=consumer.rd,
                           rs1=consumer.rs2, imm=producer.imm)
    if kind is FusionKind.MOV_FOLD:
        rs1 = producer.rs1 if consumer.rs1 == producer.rd else consumer.rs1
        rs2 = consumer.rs2
        if info(consumer.op).uses_rs2 and consumer.rs2 == producer.rd:
            rs2 = producer.rs1
        return Instruction(op=consumer.op, rd=consumer.rd, rs1=rs1, rs2=rs2,
                           imm=consumer.imm, target=consumer.target)
    raise ValueError(f"unknown fusion kind {kind}")
