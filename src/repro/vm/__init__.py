"""Execution substrate: interpreter, liveness, peephole, native backend.

The interpreter is the behaviour oracle and profile source; the native
backend defines both the "optimized x86" baseline (with peephole fusions)
and the per-instruction JIT lowering SSD's copy phase pastes together.
"""

from .errors import ControlFault, MemoryFault, OutOfFuel, VMError
from .interpreter import (
    ExecutionResult,
    Interpreter,
    TRAP_HALT,
    TRAP_PRINT,
    TRAP_READ,
    run_program,
)
from .liveness import live_out, uses_defs
from .native import (
    CALL_HOLE_SIZE,
    LoweredFunction,
    NativeChunk,
    function_native_sizes,
    lower_function,
    lower_instruction,
    native_size,
)
from .peephole import Fusion, FusionKind, FusionPlan, plan_function, rewritten_consumer

__all__ = [
    "CALL_HOLE_SIZE",
    "ControlFault",
    "ExecutionResult",
    "Fusion",
    "FusionKind",
    "FusionPlan",
    "Interpreter",
    "LoweredFunction",
    "MemoryFault",
    "NativeChunk",
    "OutOfFuel",
    "TRAP_HALT",
    "TRAP_PRINT",
    "TRAP_READ",
    "VMError",
    "function_native_sizes",
    "live_out",
    "lower_function",
    "lower_instruction",
    "native_size",
    "plan_function",
    "rewritten_consumer",
    "run_program",
    "uses_defs",
]
