"""Reference interpreter for the virtual ISA.

Two jobs:

1. **Correctness oracle.**  Compression must preserve behaviour; the
   integration tests run a program before and after an SSD round trip and
   require identical outputs.

2. **Dynamic profiles.**  The paper's Table 5 decomposes execution-time
   overhead using execution-time profiling.  The interpreter counts how
   often each static instruction executes; ``repro.analysis.overhead``
   weights per-instruction native cycle costs with those counts.

Semantics: 32-bit two's-complement arithmetic, little-endian byte-addressed
memory, r0 hard-wired to zero, a call stack separate from data memory (the
VM knows function boundaries, mirroring the per-function JIT model).
Division by zero is defined (quotient 0, remainder = dividend) so synthetic
workloads can't fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..isa import NUM_REGISTERS, Op, Program, REG_RA, REG_SP, REG_ZERO
from .errors import ControlFault, MemoryFault, OutOfFuel

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000

#: trap codes understood by the interpreter
TRAP_HALT = 0
TRAP_PRINT = 1     # append r1 (signed) to the output list
TRAP_READ = 2      # pop next value from the input iterator into r1


def _signed(value: int) -> int:
    value &= _MASK
    return value - (1 << 32) if value & _SIGN else value


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    output: List[int]
    steps: int
    halted: bool
    #: dynamic execution count per (function index, instruction index)
    profile: Dict[Tuple[int, int], int]
    #: dynamic call count per function index
    call_counts: Dict[int, int]
    #: sequence of function indices in call order (drives JIT-buffer replay)
    call_sequence: List[int] = field(default_factory=list)


class Interpreter:
    """Executes :class:`~repro.isa.Program` values.

    Parameters
    ----------
    memory_size:
        Bytes of data memory.  The stack pointer starts at the top.
    collect_profile:
        When False, skips per-instruction counting (≈2× faster) — useful
        for throughput benchmarks.
    """

    def __init__(self, memory_size: int = 1 << 16, collect_profile: bool = True) -> None:
        if memory_size <= 0 or memory_size % 4:
            raise ValueError(f"memory_size must be a positive multiple of 4, got {memory_size}")
        self.memory_size = memory_size
        self.collect_profile = collect_profile

    def run(
        self,
        program: Program,
        inputs: Optional[Iterable[int]] = None,
        fuel: int = 1_000_000,
    ) -> ExecutionResult:
        """Run ``program`` from its entry function until halt or ``fuel``."""
        regs = [0] * NUM_REGISTERS
        regs[REG_SP] = self.memory_size
        memory = bytearray(self.memory_size)
        input_iter = iter(inputs) if inputs is not None else iter(())
        output: List[int] = []
        profile: Dict[Tuple[int, int], int] = {}
        call_counts: Dict[int, int] = {}
        call_sequence: List[int] = []
        stack: List[Tuple[int, int]] = []  # (function index, return instruction index)

        findex = program.entry
        iindex = 0
        call_counts[findex] = 1
        call_sequence.append(findex)
        functions = program.functions
        steps = 0
        halted = False

        def set_reg(reg: int, value: int) -> None:
            if reg != REG_ZERO:
                regs[reg] = value & _MASK

        def load(address: int, size: int, signed: bool) -> int:
            if address < 0 or address + size > self.memory_size:
                raise MemoryFault(f"load of {size} bytes at {address:#x}")
            value = int.from_bytes(memory[address:address + size], "little")
            if signed:
                bit = 1 << (8 * size - 1)
                if value & bit:
                    value -= 1 << (8 * size)
            return value & _MASK

        def store(address: int, size: int, value: int) -> None:
            if address < 0 or address + size > self.memory_size:
                raise MemoryFault(f"store of {size} bytes at {address:#x}")
            memory[address:address + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
                size, "little"
            )

        while True:
            if steps >= fuel:
                raise OutOfFuel(f"exceeded {fuel} steps in {program.name!r}")
            steps += 1
            fn = functions[findex]
            if iindex >= len(fn.insns):
                raise ControlFault(f"{fn.name}: fell past the last instruction")
            insn = fn.insns[iindex]
            if self.collect_profile:
                key = (findex, iindex)
                profile[key] = profile.get(key, 0) + 1

            op = insn.op
            next_index = iindex + 1

            if op is Op.ADD:
                set_reg(insn.rd, regs[insn.rs1] + regs[insn.rs2])
            elif op is Op.SUB:
                set_reg(insn.rd, regs[insn.rs1] - regs[insn.rs2])
            elif op is Op.MUL:
                set_reg(insn.rd, regs[insn.rs1] * regs[insn.rs2])
            elif op is Op.DIVS:
                divisor = _signed(regs[insn.rs2])
                if divisor == 0:
                    set_reg(insn.rd, 0)
                else:
                    quotient = abs(_signed(regs[insn.rs1])) // abs(divisor)
                    if (_signed(regs[insn.rs1]) < 0) != (divisor < 0):
                        quotient = -quotient
                    set_reg(insn.rd, quotient)
            elif op is Op.REMS:
                divisor = _signed(regs[insn.rs2])
                if divisor == 0:
                    set_reg(insn.rd, regs[insn.rs1])
                else:
                    lhs = _signed(regs[insn.rs1])
                    quotient = abs(lhs) // abs(divisor)
                    if (lhs < 0) != (divisor < 0):
                        quotient = -quotient
                    set_reg(insn.rd, lhs - quotient * divisor)
            elif op is Op.AND:
                set_reg(insn.rd, regs[insn.rs1] & regs[insn.rs2])
            elif op is Op.OR:
                set_reg(insn.rd, regs[insn.rs1] | regs[insn.rs2])
            elif op is Op.XOR:
                set_reg(insn.rd, regs[insn.rs1] ^ regs[insn.rs2])
            elif op is Op.SHL:
                set_reg(insn.rd, regs[insn.rs1] << (regs[insn.rs2] & 31))
            elif op is Op.SHR:
                set_reg(insn.rd, (regs[insn.rs1] & _MASK) >> (regs[insn.rs2] & 31))
            elif op is Op.SAR:
                set_reg(insn.rd, _signed(regs[insn.rs1]) >> (regs[insn.rs2] & 31))
            elif op is Op.SLT:
                set_reg(insn.rd, int(_signed(regs[insn.rs1]) < _signed(regs[insn.rs2])))
            elif op is Op.SLTU:
                set_reg(insn.rd, int(regs[insn.rs1] < regs[insn.rs2]))
            elif op is Op.ADDI:
                set_reg(insn.rd, regs[insn.rs1] + insn.imm)
            elif op is Op.MULI:
                set_reg(insn.rd, regs[insn.rs1] * insn.imm)
            elif op is Op.ANDI:
                set_reg(insn.rd, regs[insn.rs1] & (insn.imm & _MASK))
            elif op is Op.ORI:
                set_reg(insn.rd, regs[insn.rs1] | (insn.imm & _MASK))
            elif op is Op.XORI:
                set_reg(insn.rd, regs[insn.rs1] ^ (insn.imm & _MASK))
            elif op is Op.SHLI:
                set_reg(insn.rd, regs[insn.rs1] << (insn.imm & 31))
            elif op is Op.SHRI:
                set_reg(insn.rd, (regs[insn.rs1] & _MASK) >> (insn.imm & 31))
            elif op is Op.SARI:
                set_reg(insn.rd, _signed(regs[insn.rs1]) >> (insn.imm & 31))
            elif op is Op.SLTI:
                set_reg(insn.rd, int(_signed(regs[insn.rs1]) < insn.imm))
            elif op is Op.MOV:
                set_reg(insn.rd, regs[insn.rs1])
            elif op is Op.NEG:
                set_reg(insn.rd, -_signed(regs[insn.rs1]))
            elif op is Op.NOT:
                set_reg(insn.rd, ~regs[insn.rs1])
            elif op is Op.LI:
                set_reg(insn.rd, insn.imm)
            elif op is Op.LB:
                set_reg(insn.rd, load(regs[insn.rs1] + insn.imm, 1, signed=True))
            elif op is Op.LBU:
                set_reg(insn.rd, load(regs[insn.rs1] + insn.imm, 1, signed=False))
            elif op is Op.LH:
                set_reg(insn.rd, load(regs[insn.rs1] + insn.imm, 2, signed=True))
            elif op is Op.LHU:
                set_reg(insn.rd, load(regs[insn.rs1] + insn.imm, 2, signed=False))
            elif op is Op.LW:
                set_reg(insn.rd, load(regs[insn.rs1] + insn.imm, 4, signed=False))
            elif op is Op.SB:
                store(regs[insn.rs1] + insn.imm, 1, regs[insn.rs2])
            elif op is Op.SH:
                store(regs[insn.rs1] + insn.imm, 2, regs[insn.rs2])
            elif op is Op.SW:
                store(regs[insn.rs1] + insn.imm, 4, regs[insn.rs2])
            elif op is Op.BEQ:
                if regs[insn.rs1] == regs[insn.rs2]:
                    next_index = insn.target
            elif op is Op.BNE:
                if regs[insn.rs1] != regs[insn.rs2]:
                    next_index = insn.target
            elif op is Op.BLT:
                if _signed(regs[insn.rs1]) < _signed(regs[insn.rs2]):
                    next_index = insn.target
            elif op is Op.BGE:
                if _signed(regs[insn.rs1]) >= _signed(regs[insn.rs2]):
                    next_index = insn.target
            elif op is Op.BLTU:
                if regs[insn.rs1] < regs[insn.rs2]:
                    next_index = insn.target
            elif op is Op.BGEU:
                if regs[insn.rs1] >= regs[insn.rs2]:
                    next_index = insn.target
            elif op is Op.BEQZ:
                if regs[insn.rs1] == 0:
                    next_index = insn.target
            elif op is Op.BNEZ:
                if regs[insn.rs1] != 0:
                    next_index = insn.target
            elif op is Op.JMP:
                next_index = insn.target
            elif op is Op.CALL:
                if not 0 <= insn.target < len(functions):
                    raise ControlFault(f"call target {insn.target} out of range")
                stack.append((findex, next_index))
                set_reg(REG_RA, next_index)
                findex = insn.target
                next_index = 0
                call_counts[findex] = call_counts.get(findex, 0) + 1
                call_sequence.append(findex)
            elif op is Op.CALLR:
                callee = regs[insn.rs1]
                if not 0 <= callee < len(functions):
                    raise ControlFault(f"indirect call target {callee} out of range")
                stack.append((findex, next_index))
                set_reg(REG_RA, next_index)
                findex = callee
                next_index = 0
                call_counts[findex] = call_counts.get(findex, 0) + 1
                call_sequence.append(findex)
            elif op is Op.JR:
                next_index = regs[insn.rs1]
                if not 0 <= next_index < len(fn.insns):
                    raise ControlFault(f"{fn.name}: jr to {next_index} out of range")
            elif op is Op.RET:
                if not stack:
                    halted = True
                    break
                findex, next_index = stack.pop()
            elif op is Op.NOP:
                pass
            elif op is Op.HALT:
                halted = True
                break
            elif op is Op.TRAP:
                if insn.imm == TRAP_HALT:
                    halted = True
                    break
                if insn.imm == TRAP_PRINT:
                    output.append(_signed(regs[1]))
                elif insn.imm == TRAP_READ:
                    try:
                        set_reg(1, next(input_iter))
                    except StopIteration:
                        set_reg(1, 0)
                else:
                    raise ControlFault(f"unknown trap code {insn.imm}")
            else:  # pragma: no cover - table is exhaustive
                raise ControlFault(f"unimplemented opcode {op}")

            iindex = next_index

        return ExecutionResult(
            output=output,
            steps=steps,
            halted=halted,
            profile=profile,
            call_counts=call_counts,
            call_sequence=call_sequence,
        )


def run_program(
    program: Program,
    inputs: Optional[Iterable[int]] = None,
    fuel: int = 1_000_000,
    collect_profile: bool = True,
) -> ExecutionResult:
    """Convenience wrapper: run ``program`` with default machine settings."""
    return Interpreter(collect_profile=collect_profile).run(program, inputs=inputs, fuel=fuel)
