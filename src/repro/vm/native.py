"""Native (x86-flavoured) backend.

The paper measures everything relative to "optimized x86" code, and SSD's
phase-one dictionary decompression converts VM instructions to *native*
instructions so that phase two is a block copy (section 2.2.4).  This
module is the stand-in for both:

* :func:`lower_instruction` converts one VM instruction into a
  :class:`NativeChunk` — concrete bytes with a realistic x86-like length,
  a cycle cost for the time model, and (for control transfers) a
  *target hole*: the trailing bytes where the pc-relative displacement or
  call address lands.  The hole is exactly what Algorithm 3 overwrites
  when copying dictionary entries.
* :func:`lower_function` lowers a whole function, optionally applying the
  peephole fusion plan (``optimize=True``) — fused code is the paper's
  "optimized x86" baseline; unfused code is what SSD's per-instruction JIT
  translation produces.

Byte lengths follow the x86 pattern: one or two opcode bytes, a ModRM-like
operand byte, immediates/displacements of 1/2/4 bytes, an extra ``mov``
when a two-operand machine must implement a three-operand VM op.  Cycle
costs are coarse (ALU 1, load 3, store 2, branch 2, call 4, div 20) — the
relative shape, not the absolute values, is what the experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..isa import Function, Instruction, Kind, Op, info
from ..isa.instruction import immediate_size_class
from .peephole import FusionPlan, plan_function, rewritten_consumer

#: Native call displacements are always rel32 (like x86 ``call rel32``).
CALL_HOLE_SIZE = 4


@dataclass(frozen=True)
class NativeChunk:
    """Native code for one VM instruction (or one fused pair).

    ``data`` contains the instruction bytes with any target hole zeroed.
    ``hole_size`` > 0 means the final ``hole_size`` bytes of ``data`` are a
    pc-relative displacement (branch/jump) or call target to be patched —
    the paper's "negative offset from the end" tag points here.
    """

    data: bytes
    cycles: float
    hole_size: int = 0
    is_branch: bool = False
    is_call: bool = False

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def hole_offset(self) -> int:
        """Offset of the hole from the start of ``data`` (hole at the end)."""
        return len(self.data) - self.hole_size


def _fill(*parts: int) -> bytearray:
    """Deterministic filler bytes standing in for real machine code."""
    out = bytearray()
    for part in parts:
        out.append(part & 0xFF)
    return out


def _imm_bytes(value: int) -> bytearray:
    size = immediate_size_class(value)
    if size == 2:
        size = 4  # x86 immediates are imm8 or imm32
    unsigned = value & ((1 << (8 * size)) - 1)
    return bytearray(unsigned.to_bytes(size, "little"))


_ALU_CYCLES = {
    Op.MUL: 3.0, Op.MULI: 3.0,
    Op.DIVS: 20.0, Op.REMS: 20.0,
}


def lower_instruction(insn: Instruction, target_size: Optional[int] = None) -> NativeChunk:
    """Lower one VM instruction to native code.

    ``target_size`` (1, 2 or 4) is required for branches/jumps and gives
    the pc-relative hole size; calls always get a 4-byte hole.
    """
    meta = info(insn.op)
    kind = meta.kind
    op = insn.op

    if kind is Kind.ALU_RR:
        cycles = _ALU_CYCLES.get(op, 1.0)
        if op in (Op.SLT, Op.SLTU):
            # cmp r,r ; setcc r8 ; movzx — the expensive unfused compare.
            data = _fill(0x39, 0xC0 | insn.rs1, 0x0F, 0x90 | insn.rd, 0xC0)
            return NativeChunk(bytes(data), cycles=3.0)
        if insn.rd == insn.rs1 or insn.rd == insn.rs2 and op in (Op.ADD, Op.MUL,
                                                                 Op.AND, Op.OR, Op.XOR):
            data = _fill(0x01 + meta.code, 0xC0 | (insn.rd << 3) >> 3)
            return NativeChunk(bytes(data), cycles=cycles)
        # mov rd, rs1 ; op rd, rs2
        data = _fill(0x89, 0xC0 | insn.rd, 0x01 + meta.code, 0xC0 | insn.rs2)
        return NativeChunk(bytes(data), cycles=cycles + 1.0)

    if kind is Kind.ALU_RI:
        cycles = _ALU_CYCLES.get(op, 1.0)
        if op is Op.SLTI:
            data = _fill(0x83, 0xF8 | insn.rs1) + _imm_bytes(insn.imm)
            data += _fill(0x0F, 0x90 | insn.rd, 0xC0)
            return NativeChunk(bytes(data), cycles=3.0)
        head = _fill(0x83, 0xC0 | insn.rd) + _imm_bytes(insn.imm)
        if insn.rd != insn.rs1:
            head = _fill(0x89, 0xC0 | insn.rd) + head
            cycles += 1.0
        return NativeChunk(bytes(head), cycles=cycles)

    if kind is Kind.UNARY:
        if op is Op.MOV:
            return NativeChunk(bytes(_fill(0x89, 0xC0 | insn.rd)), cycles=1.0)
        data = _fill(0xF7, 0xD8 | insn.rd)
        if insn.rd != insn.rs1:
            data = _fill(0x89, 0xC0 | insn.rd) + data
            return NativeChunk(bytes(data), cycles=2.0)
        return NativeChunk(bytes(data), cycles=1.0)

    if kind is Kind.CONST:
        data = _fill(0xB8 | insn.rd) + _imm_bytes(insn.imm)
        return NativeChunk(bytes(data), cycles=1.0)

    if kind is Kind.LOAD:
        disp = _imm_bytes(insn.imm) if insn.imm else bytearray(b"\x00")
        data = _fill(0x8B, (insn.rd << 3) | insn.rs1 & 0x7, 0x24) + disp
        return NativeChunk(bytes(data), cycles=3.0)

    if kind is Kind.STORE:
        disp = _imm_bytes(insn.imm) if insn.imm else bytearray(b"\x00")
        data = _fill(0x89, (insn.rs2 << 3) | insn.rs1 & 0x7, 0x24) + disp
        return NativeChunk(bytes(data), cycles=2.0)

    if kind is Kind.BRANCH:
        if target_size not in (1, 2, 4):
            raise ValueError(f"{op.value}: branch lowering needs target_size, got {target_size!r}")
        # cmp/test (2 bytes) + jcc opcode (1-2 bytes) + displacement hole.
        head = _fill(0x39 if meta.uses_rs2 else 0x85, 0xC0 | insn.rs1)
        jcc = _fill(0x70 | meta.code & 0xF) if target_size == 1 else _fill(0x0F, 0x80)
        hole = bytearray(target_size)
        return NativeChunk(bytes(head + jcc + hole), cycles=2.0,
                           hole_size=target_size, is_branch=True)

    if kind is Kind.JUMP:
        if target_size not in (1, 2, 4):
            raise ValueError(f"{op.value}: jump lowering needs target_size, got {target_size!r}")
        head = _fill(0xEB if target_size == 1 else 0xE9)
        return NativeChunk(bytes(head + bytearray(target_size)), cycles=1.0,
                           hole_size=target_size, is_branch=True)

    if kind is Kind.CALL:
        return NativeChunk(bytes(_fill(0xE8) + bytearray(CALL_HOLE_SIZE)), cycles=4.0,
                           hole_size=CALL_HOLE_SIZE, is_call=True)

    if kind is Kind.CALL_INDIRECT:
        return NativeChunk(bytes(_fill(0xFF, 0xD0 | insn.rs1)), cycles=5.0)

    if kind is Kind.JUMP_INDIRECT:
        return NativeChunk(bytes(_fill(0xFF, 0xE0 | insn.rs1)), cycles=4.0)

    if kind is Kind.RET:
        return NativeChunk(b"\xC3", cycles=3.0)

    if op is Op.NOP:
        return NativeChunk(b"\x90", cycles=1.0)
    if op is Op.HALT:
        return NativeChunk(b"\xF4\x90", cycles=1.0)
    if op is Op.TRAP:
        return NativeChunk(bytes(_fill(0xCD) + _imm_bytes(insn.imm)), cycles=30.0)

    raise ValueError(f"no native lowering for {op}")  # pragma: no cover


@dataclass
class LoweredFunction:
    """Native lowering of one function.

    ``chunks`` is parallel to the VM instruction list.  An instruction
    absorbed by a fusion gets a zero-length, zero-cost chunk; its consumer's
    chunk covers the pair.
    """

    name: str
    chunks: List[NativeChunk]

    @property
    def size(self) -> int:
        return sum(chunk.size for chunk in self.chunks)

    @property
    def cycles_per_insn(self) -> List[float]:
        return [chunk.cycles for chunk in self.chunks]

    def byte_offsets(self) -> List[int]:
        offsets = []
        position = 0
        for chunk in self.chunks:
            offsets.append(position)
            position += chunk.size
        return offsets


_EMPTY = NativeChunk(b"", cycles=0.0)


def lower_function(function: Function, optimize: bool = False,
                   plan: Optional[FusionPlan] = None) -> LoweredFunction:
    """Lower a function; with ``optimize=True`` apply peephole fusions."""
    sizes = function.target_sizes()
    chunks: List[NativeChunk] = []
    if optimize:
        plan = plan if plan is not None else plan_function(function)
        for index, insn in enumerate(function.insns):
            if index in plan.absorbed:
                chunks.append(_EMPTY)
                continue
            fusion = plan.by_consumer.get(index)
            if fusion is not None:
                merged = rewritten_consumer(function.insns[fusion.producer], insn,
                                            fusion.kind)
                target_size = sizes[index]
                if merged.is_branch and target_size is None:
                    # The consumer was a branch; reuse its target size.
                    target_size = 1
                chunks.append(lower_instruction(merged, target_size))
            else:
                chunks.append(lower_instruction(insn, sizes[index]))
    else:
        for index, insn in enumerate(function.insns):
            chunks.append(lower_instruction(insn, sizes[index]))
    return LoweredFunction(name=function.name, chunks=chunks)


def native_size(program, optimize: bool = True) -> int:
    """Total native code bytes for a program.

    With ``optimize=True`` this is the reproduction's "optimized x86 size"
    — the denominator of every ratio in Tables 5/6 and Figure 3.
    """
    return sum(lower_function(fn, optimize=optimize).size for fn in program.functions)


def function_native_sizes(program, optimize: bool = True) -> List[int]:
    """Per-function native sizes (drives the JIT buffer experiments)."""
    return [lower_function(fn, optimize=optimize).size for fn in program.functions]
