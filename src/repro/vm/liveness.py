"""Per-function register liveness analysis.

The peephole optimizer (``repro.vm.peephole``) may only fuse away a
producer instruction when its destination register is *dead* after the
consumer.  This module computes, for every instruction, the set of
registers live immediately after it, via the standard backward dataflow
over basic blocks.

Conservatism: calls are treated as reading every register (so anything
live across a call stays live), ``ret`` as reading the return value plus
every callee-saved register (the calling convention below), and a ``jr``
(computed intra-function jump) as possibly reaching every block.  The
analysis is sound for programs that respect the calling convention —
which everything produced by ``repro.workloads.compiler`` does.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..isa import Function, Kind, NUM_REGISTERS, Op, basic_blocks, info
from ..isa.opcodes import REG_FP, REG_RA, REG_RV, REG_SP, REG_ZERO

ALL_REGS: FrozenSet[int] = frozenset(range(1, NUM_REGISTERS))  # r0 never live

#: Calling convention: r2-r15 are caller-saved argument/temp registers,
#: r16-r28 are callee-saved, r29/r30/r31 are sp/fp/ra.  ``ret`` publishes
#: the return value and must preserve exactly these registers; temps die.
CALLEE_SAVED: FrozenSet[int] = frozenset(range(16, 29)) | {REG_SP, REG_FP}
RET_USES: FrozenSet[int] = CALLEE_SAVED | {REG_RV, REG_RA}


def uses_defs(insn) -> Tuple[Set[int], Set[int]]:
    """Return ``(uses, defs)`` register sets for one instruction."""
    meta = info(insn.op)
    uses: Set[int] = set()
    defs: Set[int] = set()
    if meta.uses_rs1 and insn.rs1 != REG_ZERO:
        uses.add(insn.rs1)
    if meta.uses_rs2 and insn.rs2 != REG_ZERO:
        uses.add(insn.rs2)
    if meta.uses_rd and insn.rd != REG_ZERO:
        defs.add(insn.rd)
    if meta.kind in (Kind.CALL, Kind.CALL_INDIRECT):
        uses |= ALL_REGS
        defs |= {REG_RV, REG_RA}
    elif meta.kind is Kind.RET:
        uses |= RET_USES
    elif insn.op is Op.TRAP:
        uses.add(REG_RV)
        defs.add(REG_RV)
    return uses, defs


def live_out(function: Function) -> List[Set[int]]:
    """Registers live immediately *after* each instruction.

    Returns a list parallel to ``function.insns``.
    """
    insns = function.insns
    if not insns:
        return []
    blocks = basic_blocks(function)
    block_of_index: Dict[int, int] = {}
    for bindex, block in enumerate(blocks):
        for i in range(block.start, block.end):
            block_of_index[i] = bindex

    successors: List[List[int]] = []
    for bindex, block in enumerate(blocks):
        last = insns[block.end - 1]
        succ: List[int] = []
        meta = info(last.op)
        if last.op is Op.JR:
            succ = list(range(len(blocks)))  # conservative: could go anywhere
        elif last.is_branch:
            succ.append(block_of_index[last.target])
            if meta.falls_through and block.end < len(insns):
                succ.append(block_of_index[block.end])
        elif meta.falls_through and block.end < len(insns):
            succ.append(block_of_index[block.end])
        successors.append(sorted(set(succ)))

    # Per-block use/def summaries.
    block_use: List[Set[int]] = []
    block_def: List[Set[int]] = []
    for block in blocks:
        used: Set[int] = set()
        defined: Set[int] = set()
        for i in range(block.start, block.end):
            u, d = uses_defs(insns[i])
            used |= u - defined
            defined |= d
        block_use.append(used)
        block_def.append(defined)

    live_in: List[Set[int]] = [set() for _ in blocks]
    live_out_blocks: List[Set[int]] = [set() for _ in blocks]
    changed = True
    while changed:
        changed = False
        for bindex in range(len(blocks) - 1, -1, -1):
            out: Set[int] = set()
            for succ in successors[bindex]:
                out |= live_in[succ]
            new_in = block_use[bindex] | (out - block_def[bindex])
            if out != live_out_blocks[bindex] or new_in != live_in[bindex]:
                live_out_blocks[bindex] = out
                live_in[bindex] = new_in
                changed = True

    # Walk each block backwards for per-instruction live-out.
    result: List[Set[int]] = [set() for _ in insns]
    for bindex, block in enumerate(blocks):
        live = set(live_out_blocks[bindex])
        for i in range(block.end - 1, block.start - 1, -1):
            result[i] = set(live)
            u, d = uses_defs(insns[i])
            live = (live - d) | u
    return result
