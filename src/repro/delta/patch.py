"""Self-describing container patches: the `repro.delta` wire artifact.

A *patch* encodes one container (the **target**) as edits against
another (the **base**), both named by SHA-256 so application is
verifiable end to end:

``
u8       patch format version (currently 1)
32 bytes base SHA-256   (sha256(b"") for a standalone patch)
32 bytes target SHA-256
uvarint  base length in bytes
uvarint  target length in bytes
u8       mode (0 = RAW, 1 = SECTIONS)
...      mode-specific body
``

**RAW** bodies are a single :mod:`repro.delta.bdelta` stream over the
whole container — always available, used when either side does not
parse as a plain SSD container (v1, v3 envelopes, foreign codecs).

**SECTIONS** bodies exploit the split-stream container layout: the
base's blobs (function-name stream, common base/tree dictionaries,
per-segment dictionaries, per-function item streams) form an indexed
reference table, and each target blob is transmitted as one *op*:

* ``COPY index``  — byte-identical to a base blob (the common case for
  unchanged dictionaries and untouched functions);
* ``BDELTA index stream`` — a windowed byte delta against a base blob
  (item streams are matched to the base function of the same *name*,
  so insertions and deletions do not shift every subsequent diff);
* ``RAW bytes`` — no useful base (new functions, heavy rewrites).

Item streams get two more ops, because a small dictionary edit
renumbers the 16-bit index of nearly every entry and defeats byte-level
matching even for *unchanged* functions:

* ``REMAP base_findex`` — re-tokenize the base function's item stream
  and translate every dictionary index through the old→new entry
  mapping (entries matched by key, sequence nodes by their key path).
  A function whose body did not change re-encodes byte-identically, so
  the whole stream costs three bytes on the wire;
* ``REMAP_DELTA base_findex stream`` — the same translation followed
  by a byte delta, for functions that changed *and* sit in a
  renumbered index space.

The mode is chosen at make time by measured size, and SECTIONS is only
eligible when re-serializing the parsed target reproduces it
byte-for-byte, so both modes reconstruct exactly.  Application always
verifies ``sha256(base)`` before touching anything
(:class:`~repro.errors.BaseMismatch`) and ``sha256(result)`` before
returning (:class:`~repro.errors.DeltaError`): a corrupt or mismatched
patch can fail loudly, never produce a wrong container.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.container import (
    DEFAULT_LIMITS,
    ContainerSections,
    DecodeLimits,
    SegmentSections,
    container_version,
    parse,
    serialize,
)
from ..core.layout import SegmentLayout, layouts_from_sections
from ..errors import BaseMismatch, CorruptContainer, DeltaError, LimitExceeded
from ..lz import lz77
from ..lz.varint import ByteReader, ByteWriter
from .bdelta import delta_apply, delta_compress

#: current patch header format version
PATCH_VERSION = 1
#: length of the SHA-256 digests naming base and target
HASH_BYTES = 32
#: digest of the empty base — the standalone-patch convention
EMPTY_BASE_HASH = hashlib.sha256(b"").digest()

#: whole-container byte delta
MODE_RAW = 0
#: per-section ops against the base's blob table
MODE_SECTIONS = 1

_OP_COPY = 0
_OP_BDELTA = 1
_OP_RAW = 2
_OP_REMAP = 3        # item streams only
_OP_REMAP_DELTA = 4  # item streams only
_OP_ZDELTA = 3       # dictionary blobs only (separate op namespace)

#: ZDELTA framing: the whole blob is one LZ77 stream (sequence trees)
_FRAME_LZ = 0
#: ZDELTA framing: codec-tag byte + LZ77 stream (base-entry blobs)
_FRAME_TAGGED_LZ = 1

#: base-entry codec tags whose payload is LZ77-compressed
#: (``repro.core.base_entries.CODECS`` indices for "lz" and "delta+lz")
_LZ_TAGS = (0, 2)

_HEADER_LEN = 1 + 2 * HASH_BYTES  # fixed prefix before the varint fields


@dataclass(frozen=True)
class PatchInfo:
    """Decoded patch header (no body decoding)."""

    version: int
    base_hash: bytes
    target_hash: bytes
    base_len: int
    target_len: int
    mode: int

    @property
    def base_hex(self) -> str:
        return self.base_hash.hex()

    @property
    def target_hex(self) -> str:
        return self.target_hash.hex()

    @property
    def standalone(self) -> bool:
        """True when the patch applies to the empty base."""
        return self.base_hash == EMPTY_BASE_HASH


def _read_header(patch: bytes) -> Tuple[PatchInfo, ByteReader]:
    reader = ByteReader(patch)
    version = reader.read_u8()
    if version != PATCH_VERSION:
        raise DeltaError(
            f"unsupported patch format version {version} "
            f"(expected {PATCH_VERSION})", section="patch", offset=0)
    base_hash = reader.read_bytes(HASH_BYTES)
    target_hash = reader.read_bytes(HASH_BYTES)
    base_len = reader.read_uvarint()
    target_len = reader.read_uvarint()
    mode = reader.read_u8()
    if mode not in (MODE_RAW, MODE_SECTIONS):
        raise DeltaError(f"unknown patch mode {mode}", section="patch",
                         offset=_HEADER_LEN)
    return (PatchInfo(version=version, base_hash=base_hash,
                      target_hash=target_hash, base_len=base_len,
                      target_len=target_len, mode=mode), reader)


def patch_info(patch: bytes) -> PatchInfo:
    """Decode and validate a patch header without applying it."""
    info, _ = _read_header(patch)
    return info


def is_patch(data: bytes) -> bool:
    """Cheap sniff: does ``data`` start with a decodable patch header?"""
    try:
        patch_info(data)
    except CorruptContainer:
        return False
    return True


# ---------------------------------------------------------------------------
# SECTIONS mode: split-stream-aware blob ops


def _names_stream(names: Sequence[str]) -> bytes:
    writer = ByteWriter()
    writer.write_uvarint(len(names))
    for name in names:
        raw = name.encode("utf-8")
        writer.write_uvarint(len(raw))
        writer.write_bytes(raw)
    return writer.getvalue()


def _parse_names_stream(blob: bytes, limits: DecodeLimits) -> List[str]:
    reader = ByteReader(blob)
    count = reader.read_uvarint()
    if count > limits.max_functions:
        raise LimitExceeded(f"patch names {count} functions, limit "
                            f"{limits.max_functions}", section="patch")
    names = []
    for _ in range(count):
        raw = reader.read_bytes(reader.read_uvarint())
        try:
            names.append(raw.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise DeltaError(f"undecodable function name: {exc}",
                             section="patch") from exc
    return names


def _section_blobs(sections: ContainerSections) -> List[bytes]:
    """The base's indexed blob table (everything but item streams)."""
    blobs = [_names_stream(sections.function_names),
             sections.common_base_blob, sections.common_tree_blob]
    for segment in sections.segments:
        blobs.append(segment.base_blob)
        blobs.append(segment.tree_blob)
    return blobs


def _inflate(blob: bytes, framing: int) -> Optional[Tuple[int, bytes]]:
    """(codec tag, inflated payload) of an LZ-framed blob, else None."""
    try:
        if framing == _FRAME_LZ and blob:
            return (0, lz77.decompress(blob))
        if (framing == _FRAME_TAGGED_LZ and len(blob) >= 2
                and blob[0] in _LZ_TAGS):
            return (blob[0], lz77.decompress(blob[1:]))
    except CorruptContainer:
        return None
    return None


def _deflate(tag: int, payload: bytes, framing: int) -> bytes:
    if framing == _FRAME_LZ:
        return lz77.compress(payload)
    return bytes([tag]) + lz77.compress(payload)


def _emit_op(writer: ByteWriter, target_blob: bytes, table: Sequence[bytes],
             index_of: Dict[bytes, int], preferred: Optional[int],
             framing: Optional[int] = None) -> None:
    """Write the smallest of COPY / ZDELTA / BDELTA / RAW.

    ``framing`` marks blobs that are LZ77 streams on the wire (dictionary
    sections): those get a ZDELTA candidate — a byte delta over the
    *inflated* payloads, re-compressed deterministically on apply —
    because deltas of compressed bytes barely shrink.
    """
    copy_index = index_of.get(target_blob)
    if copy_index is not None:
        writer.write_u8(_OP_COPY)
        writer.write_uvarint(copy_index)
        return
    candidates = []
    if preferred is not None:
        stream = delta_compress(table[preferred], target_blob)
        w = ByteWriter()
        w.write_u8(_OP_BDELTA)
        w.write_uvarint(preferred)
        w.write_uvarint(len(stream))
        w.write_bytes(stream)
        candidates.append(w.getvalue())
        if framing is not None:
            base_inflated = _inflate(table[preferred], framing)
            target_inflated = _inflate(target_blob, framing)
            if base_inflated is not None and target_inflated is not None:
                tag, payload = target_inflated
                if _deflate(tag, payload, framing) == target_blob:
                    stream = delta_compress(base_inflated[1], payload)
                    w = ByteWriter()
                    w.write_u8(_OP_ZDELTA)
                    w.write_uvarint(preferred)
                    w.write_u8(framing)
                    w.write_u8(tag)
                    w.write_uvarint(len(stream))
                    w.write_bytes(stream)
                    candidates.append(w.getvalue())
    w = ByteWriter()
    w.write_u8(_OP_RAW)
    w.write_uvarint(len(target_blob))
    w.write_bytes(target_blob)
    candidates.append(w.getvalue())
    writer.write_bytes(min(candidates, key=len))


def _read_op(reader: ByteReader, table: Sequence[bytes],
             limits: DecodeLimits) -> bytes:
    at = reader.position
    op = reader.read_u8()
    if op == _OP_COPY:
        index = reader.read_uvarint()
        if index >= len(table):
            raise DeltaError(f"COPY references base blob {index} of "
                             f"{len(table)}", section="patch", offset=at)
        return table[index]
    if op == _OP_BDELTA:
        index = reader.read_uvarint()
        if index >= len(table):
            raise DeltaError(f"BDELTA references base blob {index} of "
                             f"{len(table)}", section="patch", offset=at)
        stream = reader.read_bytes(reader.read_uvarint())
        return delta_apply(table[index], stream,
                           max_output=limits.max_blob_output)
    if op == _OP_ZDELTA:
        index = reader.read_uvarint()
        if index >= len(table):
            raise DeltaError(f"ZDELTA references base blob {index} of "
                             f"{len(table)}", section="patch", offset=at)
        framing = reader.read_u8()
        if framing not in (_FRAME_LZ, _FRAME_TAGGED_LZ):
            raise DeltaError(f"unknown ZDELTA framing {framing}",
                             section="patch", offset=at)
        tag = reader.read_u8()
        stream = reader.read_bytes(reader.read_uvarint())
        inflated = _inflate(table[index], framing)
        if inflated is None:
            raise DeltaError("ZDELTA against a base blob that is not an "
                             "LZ stream", section="patch", offset=at)
        payload = delta_apply(inflated[1], stream,
                              max_output=limits.max_blob_output)
        return _deflate(tag, payload, framing)
    if op == _OP_RAW:
        length = reader.read_uvarint()
        if length > limits.max_blob_output:
            raise LimitExceeded(f"RAW blob of {length} bytes exceeds limit "
                                f"{limits.max_blob_output}",
                                section="patch", offset=at)
        return reader.read_bytes(length)
    raise DeltaError(f"unknown blob op {op}", section="patch", offset=at)


class _RemapContext:
    """Lazily built dictionary-index symbol tables for one container.

    Both sides of a REMAP run this over *identical* section bytes (the
    base's on both ends; the target's as parsed at make time and as
    reconstructed at apply time), so the symbol tables — and therefore
    the old→new index mapping — are deterministic.
    """

    def __init__(self, sections: ContainerSections,
                 limits: DecodeLimits = DEFAULT_LIMITS) -> None:
        self.sections = sections
        self.limits = limits
        self._layouts: Optional[List[SegmentLayout]] = None
        self._symbols: Dict[int, Dict[int, Tuple]] = {}
        self._reverse: Dict[int, Dict[Tuple, int]] = {}

    def layouts(self) -> List[SegmentLayout]:
        if self._layouts is None:
            self._layouts = layouts_from_sections(
                self.sections.common_base_blob,
                self.sections.common_tree_blob,
                list(self.sections.segments), limits=self.limits)
        return self._layouts

    def segment_of(self, findex: int) -> Optional[int]:
        for sindex, segment in enumerate(self.sections.segments):
            if (segment.first_function <= findex
                    < segment.first_function + segment.function_count):
                return sindex
        return None

    def symbols(self, sindex: int) -> Dict[int, Tuple]:
        cached = self._symbols.get(sindex)
        if cached is None:
            layout = self.layouts()[sindex]
            addr_bases = layout.addr_bases
            cached = {index: tuple(addr_bases[addr].key for addr in path)
                      for index, path in layout.paths_of.items()}
            self._symbols[sindex] = cached
        return cached

    def reverse_symbols(self, sindex: int) -> Dict[Tuple, int]:
        cached = self._reverse.get(sindex)
        if cached is None:
            cached = {}
            for index, symbol in self.symbols(sindex).items():
                cached.setdefault(symbol, index)
            self._reverse[sindex] = cached
        return cached


def _index_mapping(base_ctx: _RemapContext, bsindex: int,
                   target_ctx: _RemapContext, tsindex: int,
                   cache: Dict[Tuple[int, int], Dict[int, int]],
                   ) -> Dict[int, int]:
    """old index → new index, for entries whose symbol survived."""
    key = (bsindex, tsindex)
    mapping = cache.get(key)
    if mapping is None:
        reverse = target_ctx.reverse_symbols(tsindex)
        mapping = {}
        for old, symbol in base_ctx.symbols(bsindex).items():
            new = reverse.get(symbol)
            if new is not None:
                mapping[old] = new
        cache[key] = mapping
    return mapping


def _remap_stream(blob: bytes, layout: SegmentLayout,
                  mapping: Dict[int, int]) -> bytes:
    """Translate one item stream into the target's index space.

    Indices whose entry has no counterpart in the target keep their old
    value — deterministic on both sides, and the ``REMAP_DELTA`` fixup
    stream corrects those spots (a bare ``REMAP`` is only emitted when
    the translation reproduces the target stream exactly).  Raises
    :class:`DeltaError` when the stream references an index the base
    layout does not define — at make time that just disqualifies the
    candidate; at apply time it means the patch is corrupt.
    """
    reader = ByteReader(blob)
    writer = ByteWriter()
    info_of = layout.info_of
    while not reader.at_end():
        old = reader.read_u16()
        entry = info_of.get(old)
        if entry is None:
            raise DeltaError(f"REMAP: stream references unknown dictionary "
                             f"index {old}", section="patch")
        writer.write_u16(mapping.get(old, old))
        if entry.is_branch or entry.is_call:
            writer.write_bytes(reader.read_bytes(entry.target_size))
    return writer.getvalue()


def _remapped_base_stream(bfindex: int, base_ctx: _RemapContext,
                          target_ctx: _RemapContext, tfindex: int,
                          mapping_cache: Dict[Tuple[int, int], Dict[int, int]],
                          ) -> bytes:
    """Base function ``bfindex``'s stream, translated for ``tfindex``."""
    item_table = base_ctx.sections.item_streams
    if bfindex >= len(item_table):
        raise DeltaError(f"REMAP references base function {bfindex} of "
                         f"{len(item_table)}", section="patch")
    bsindex = base_ctx.segment_of(bfindex)
    tsindex = target_ctx.segment_of(tfindex)
    if bsindex is None or tsindex is None:
        raise DeltaError(f"REMAP: function {bfindex}→{tfindex} is outside "
                         "every segment", section="patch")
    mapping = _index_mapping(base_ctx, bsindex, target_ctx, tsindex,
                             mapping_cache)
    return _remap_stream(item_table[bfindex],
                         base_ctx.layouts()[bsindex], mapping)


def _emit_item_op(writer: ByteWriter, stream: bytes, tfindex: int,
                  item_table: Sequence[bytes], index_of: Dict[bytes, int],
                  bfindex: Optional[int], base_ctx: _RemapContext,
                  target_ctx: _RemapContext,
                  mapping_cache: Dict[Tuple[int, int], Dict[int, int]],
                  ) -> None:
    """Smallest of COPY / REMAP / REMAP_DELTA / BDELTA / RAW."""
    copy_index = index_of.get(stream)
    if copy_index is not None:
        writer.write_u8(_OP_COPY)
        writer.write_uvarint(copy_index)
        return
    candidates = []
    if bfindex is not None:
        try:
            remapped = _remapped_base_stream(bfindex, base_ctx, target_ctx,
                                             tfindex, mapping_cache)
        except CorruptContainer:
            remapped = None
        if remapped == stream:
            w = ByteWriter()
            w.write_u8(_OP_REMAP)
            w.write_uvarint(bfindex)
            candidates.append(w.getvalue())
        elif remapped is not None:
            fixup = delta_compress(remapped, stream)
            w = ByteWriter()
            w.write_u8(_OP_REMAP_DELTA)
            w.write_uvarint(bfindex)
            w.write_uvarint(len(fixup))
            w.write_bytes(fixup)
            candidates.append(w.getvalue())
        if not candidates:
            bdelta = delta_compress(item_table[bfindex], stream)
            w = ByteWriter()
            w.write_u8(_OP_BDELTA)
            w.write_uvarint(bfindex)
            w.write_uvarint(len(bdelta))
            w.write_bytes(bdelta)
            candidates.append(w.getvalue())
    w = ByteWriter()
    w.write_u8(_OP_RAW)
    w.write_uvarint(len(stream))
    w.write_bytes(stream)
    candidates.append(w.getvalue())
    writer.write_bytes(min(candidates, key=len))


def _read_item_op(reader: ByteReader, tfindex: int, base_ctx: _RemapContext,
                  target_ctx: _RemapContext,
                  mapping_cache: Dict[Tuple[int, int], Dict[int, int]],
                  limits: DecodeLimits) -> bytes:
    at = reader.position
    op = reader.read_u8()
    item_table = base_ctx.sections.item_streams
    if op in (_OP_COPY, _OP_BDELTA):
        index = reader.read_uvarint()
        if index >= len(item_table):
            raise DeltaError(f"item op references base function {index} of "
                             f"{len(item_table)}", section="patch", offset=at)
        if op == _OP_COPY:
            return item_table[index]
        stream = reader.read_bytes(reader.read_uvarint())
        return delta_apply(item_table[index], stream,
                           max_output=limits.max_blob_output)
    if op == _OP_RAW:
        length = reader.read_uvarint()
        if length > limits.max_blob_output:
            raise LimitExceeded(f"RAW item stream of {length} bytes exceeds "
                                f"limit {limits.max_blob_output}",
                                section="patch", offset=at)
        return reader.read_bytes(length)
    if op in (_OP_REMAP, _OP_REMAP_DELTA):
        bfindex = reader.read_uvarint()
        remapped = _remapped_base_stream(bfindex, base_ctx, target_ctx,
                                         tfindex, mapping_cache)
        if op == _OP_REMAP:
            return remapped
        fixup = reader.read_bytes(reader.read_uvarint())
        return delta_apply(remapped, fixup,
                           max_output=limits.max_blob_output)
    raise DeltaError(f"unknown item op {op}", section="patch", offset=at)


def _sections_body(base: bytes, target: bytes) -> Optional[bytes]:
    """SECTIONS body, or None when either side is not eligible."""
    try:
        if container_version(base) not in (1, 2):
            return None
        if container_version(target) != 2:
            return None
        base_sections = parse(base)
        target_sections = parse(target)
    except CorruptContainer:
        return None
    if serialize(target_sections, version=2) != target:
        return None  # not canonically serialized; RAW still reconstructs

    table = _section_blobs(base_sections)
    index_of: Dict[bytes, int] = {}
    for index, blob in enumerate(table):
        index_of.setdefault(blob, index)
    item_table = list(base_sections.item_streams)
    item_index_of: Dict[bytes, int] = {}
    for index, blob in enumerate(item_table):
        item_index_of.setdefault(blob, index)
    base_findex = {name: index
                   for index, name in enumerate(base_sections.function_names)}

    writer = ByteWriter()
    raw_name = target_sections.program_name.encode("utf-8")
    writer.write_uvarint(len(raw_name))
    writer.write_bytes(raw_name)
    writer.write_uvarint(target_sections.entry)
    _emit_op(writer, _names_stream(target_sections.function_names),
             table, index_of, preferred=0)
    _emit_op(writer, target_sections.common_base_blob, table, index_of,
             preferred=1, framing=_FRAME_TAGGED_LZ)
    _emit_op(writer, target_sections.common_tree_blob, table, index_of,
             preferred=2, framing=_FRAME_LZ)
    writer.write_uvarint(len(target_sections.segments))
    for sindex, segment in enumerate(target_sections.segments):
        writer.write_uvarint(segment.first_function)
        writer.write_uvarint(segment.function_count)
        has_peer = sindex < len(base_sections.segments)
        _emit_op(writer, segment.base_blob, table, index_of,
                 preferred=3 + 2 * sindex if has_peer else None,
                 framing=_FRAME_TAGGED_LZ)
        _emit_op(writer, segment.tree_blob, table, index_of,
                 preferred=4 + 2 * sindex if has_peer else None,
                 framing=_FRAME_LZ)
    base_ctx = _RemapContext(base_sections)
    target_ctx = _RemapContext(target_sections)
    mapping_cache: Dict[Tuple[int, int], Dict[int, int]] = {}
    for findex, stream in enumerate(target_sections.item_streams):
        name = target_sections.function_names[findex]
        _emit_item_op(writer, stream, findex, item_table, item_index_of,
                      base_findex.get(name), base_ctx, target_ctx,
                      mapping_cache)
    return writer.getvalue()


def _apply_sections(base: bytes, reader: ByteReader,
                    limits: DecodeLimits) -> bytes:
    base_sections = parse(base, limits=limits)
    table = _section_blobs(base_sections)

    raw_name = reader.read_bytes(reader.read_uvarint())
    try:
        program_name = raw_name.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise DeltaError(f"undecodable program name: {exc}",
                         section="patch") from exc
    entry = reader.read_uvarint()
    function_names = _parse_names_stream(_read_op(reader, table, limits),
                                         limits)
    common_base_blob = _read_op(reader, table, limits)
    common_tree_blob = _read_op(reader, table, limits)
    segment_count = reader.read_uvarint()
    if segment_count > limits.max_segments:
        raise LimitExceeded(f"patch declares {segment_count} segments, limit "
                            f"{limits.max_segments}", section="patch")
    segments = []
    for _ in range(segment_count):
        first_function = reader.read_uvarint()
        function_count = reader.read_uvarint()
        base_blob = _read_op(reader, table, limits)
        tree_blob = _read_op(reader, table, limits)
        segments.append(SegmentSections(first_function=first_function,
                                        function_count=function_count,
                                        base_blob=base_blob,
                                        tree_blob=tree_blob))
    base_ctx = _RemapContext(base_sections, limits=limits)
    target_ctx = _RemapContext(
        ContainerSections(program_name=program_name, entry=entry,
                          function_names=function_names,
                          common_base_blob=common_base_blob,
                          common_tree_blob=common_tree_blob,
                          segments=segments, item_streams=[]),
        limits=limits)
    mapping_cache: Dict[Tuple[int, int], Dict[int, int]] = {}
    item_streams = [_read_item_op(reader, tfindex, base_ctx, target_ctx,
                                  mapping_cache, limits)
                    for tfindex in range(len(function_names))]
    if not reader.at_end():
        raise DeltaError(f"{reader.remaining} trailing bytes after patch "
                         "body", section="patch", offset=reader.position)
    sections = ContainerSections(program_name=program_name, entry=entry,
                                 function_names=function_names,
                                 common_base_blob=common_base_blob,
                                 common_tree_blob=common_tree_blob,
                                 segments=segments,
                                 item_streams=item_streams)
    try:
        return serialize(sections, version=2)
    except (CorruptContainer, ValueError) as exc:
        raise DeltaError(f"patched sections do not serialize: {exc}",
                         section="patch") from exc


# ---------------------------------------------------------------------------
# public surface


def make_patch(base: bytes, target: bytes) -> bytes:
    """Encode ``target`` as a patch against ``base``.

    ``base=b""`` produces a *standalone* patch (the ``ssd-delta``
    codec's registry-compatible form).  The smaller of the RAW and
    SECTIONS bodies wins; both reconstruct byte-identically.
    """
    body = delta_compress(base, target)
    mode = MODE_RAW
    sections = _sections_body(base, target)
    if sections is not None and len(sections) < len(body):
        body, mode = sections, MODE_SECTIONS
    writer = ByteWriter()
    writer.write_u8(PATCH_VERSION)
    writer.write_bytes(hashlib.sha256(base).digest())
    writer.write_bytes(hashlib.sha256(target).digest())
    writer.write_uvarint(len(base))
    writer.write_uvarint(len(target))
    writer.write_u8(mode)
    writer.write_bytes(body)
    return writer.getvalue()


def apply_patch(base: bytes, patch: bytes,
                limits: DecodeLimits = DEFAULT_LIMITS) -> bytes:
    """Apply ``patch`` to ``base``, verifying both digests.

    Raises :class:`~repro.errors.BaseMismatch` when ``base`` is not the
    patch's declared base (before any reconstruction), and
    :class:`~repro.errors.DeltaError` (or another
    :class:`~repro.errors.CorruptContainer` member) when the patch is
    damaged or the result does not hash to the declared target.
    """
    info, reader = _read_header(patch)
    got = hashlib.sha256(base).digest()
    if got != info.base_hash:
        raise BaseMismatch(
            f"patch expects base {info.base_hex[:12]}…, got "
            f"{got.hex()[:12]}…", expected=info.base_hex, got=got.hex())
    if info.target_len > limits.max_blob_output:
        raise LimitExceeded(
            f"patch declares a {info.target_len}-byte target, limit "
            f"{limits.max_blob_output}", section="patch")
    try:
        if info.mode == MODE_RAW:
            result = delta_apply(base, patch[reader.position:],
                                 max_output=limits.max_blob_output)
        else:
            result = _apply_sections(base, reader, limits)
    except CorruptContainer:
        raise
    except (ValueError, KeyError, IndexError, OverflowError) as exc:
        # Corrupt patch bytes can reconstruct well-formed-looking blobs
        # whose *content* is invalid (e.g. a dictionary entry with an
        # impossible register); whatever a lower layer raises, the caller
        # sees the taxonomy.
        raise DeltaError(f"patch application failed: {exc}",
                         section="patch") from exc
    if hashlib.sha256(result).digest() != info.target_hash:
        raise DeltaError(
            f"patch applied cleanly but the result hashes to "
            f"{hashlib.sha256(result).hexdigest()[:12]}…, not the declared "
            f"target {info.target_hex[:12]}…", section="patch")
    return result


def apply_chain(base: bytes, patches: Sequence[bytes],
                limits: DecodeLimits = DEFAULT_LIMITS) -> bytes:
    """Apply a sequence of patches, each against the previous result.

    Detects cycles (a patch whose target is a state the chain already
    visited) before applying the offending patch, so a malicious chain
    cannot loop the updater.
    """
    seen = {hashlib.sha256(base).digest()}
    current = base
    for position, patch in enumerate(patches):
        info = patch_info(patch)
        if info.target_hash in seen:
            raise DeltaError(
                f"patch chain cycles: patch {position} re-targets already-"
                f"visited state {info.target_hex[:12]}…", section="patch")
        current = apply_patch(current, patch, limits=limits)
        seen.add(info.target_hash)
    return current


__all__ = [
    "EMPTY_BASE_HASH",
    "HASH_BYTES",
    "MODE_RAW",
    "MODE_SECTIONS",
    "PATCH_VERSION",
    "PatchInfo",
    "apply_chain",
    "apply_patch",
    "is_patch",
    "make_patch",
    "patch_info",
]
