"""Corpus-trained shared base dictionaries — fleet-wide bases.

The paper's BRISC external-dictionary results (Table 5) and the Prolog
corpus-dictionary work both show the same thing: when many related
programs ship, the dictionary should be hoisted *out* of each container
and shared.  ``repro.delta`` realizes that as a **shared base**: a
valid, zero-function SSD v2 container whose common dictionary carries
the base entries most frequent across a training corpus.

The artifact is an ordinary container on purpose — it admits into the
serve store through the same verify gate as real programs, is content-
addressed by the same SHA-256, and any container compressed from a
corpus member diffs small against it (``make_patch(shared, target)``):
the dictionary blobs COPY or byte-delta against the shared entries and
only the program's residual rides the wire.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Tuple

from ..core.base_entries import (
    decode_base_entries,
    encode_base_entries,
    order_base_entries,
)
from ..core.compressor import compress
from ..core.container import ContainerSections, parse, serialize
from ..core.dictionary import BaseEntry
from ..isa import Program

#: default dictionary-entry budget for a shared base (mirrors the index
#: budget a single container's common dictionary typically gets)
DEFAULT_BUDGET = 2048

#: program name stamped into shared-base containers, so ``ssd inspect``
#: and store listings identify the artifact at a glance
SHARED_BASE_NAME = "shared-base"


def count_base_entries(containers: Iterable[bytes],
                       ) -> Tuple[Counter, Dict[Tuple, BaseEntry]]:
    """Frequency-count base entries across serialized containers.

    Counts every entry in each container's common and per-segment base
    dictionaries, keyed by the entry's canonical match key; returns the
    counter plus a representative :class:`BaseEntry` per key.
    """
    counts: Counter = Counter()
    entry_of: Dict[Tuple, BaseEntry] = {}
    for data in containers:
        sections = parse(data)
        blobs = [sections.common_base_blob]
        blobs.extend(segment.base_blob for segment in sections.segments)
        for blob in blobs:
            if not blob:
                continue
            for entry in decode_base_entries(blob):
                counts[entry.key] += 1
                entry_of.setdefault(entry.key, entry)
    return counts, entry_of


def train_shared_base(programs: Iterable[Program],
                      budget: int = DEFAULT_BUDGET,
                      name: str = SHARED_BASE_NAME) -> bytes:
    """Train a shared base container over a program corpus.

    Compresses each program, counts its dictionary entries, keeps the
    ``budget`` most frequent (ties broken by canonical dictionary
    order, so training is deterministic), and serializes them as the
    common dictionary of a zero-function SSD v2 container.
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    containers = [compress(program).data for program in programs]
    counts, entry_of = count_base_entries(containers)
    ranked = order_base_entries(list(entry_of.values()))
    ranked.sort(key=lambda entry: -counts[entry.key])
    kept = order_base_entries(ranked[:budget])
    sections = ContainerSections(
        program_name=name,
        entry=0,
        function_names=[],
        common_base_blob=encode_base_entries(kept) if kept else b"",
        common_tree_blob=b"",
        segments=[],
        item_streams=[],
    )
    return serialize(sections, version=2)


def is_shared_base(data: bytes) -> bool:
    """True when ``data`` is a zero-function container (a pure base)."""
    try:
        sections = parse(data)
    except Exception:
        return False
    return not sections.function_names and not sections.item_streams


__all__ = [
    "DEFAULT_BUDGET",
    "SHARED_BASE_NAME",
    "count_base_entries",
    "is_shared_base",
    "train_shared_base",
]
