"""Windowed byte-delta primitives: LZ77 matching against a base buffer.

The patch layer (``repro.delta.patch``) expresses a target container as
edits against a content-addressed base.  At the byte level that is
ordinary LZ77 with one twist: the match window is seeded with the *base*
bytes, so a back-reference can reach across the base/target boundary and
"copy 4 KiB from the previous version" costs a few bytes.

The token stream is exactly :mod:`repro.lz.lz77`'s (literal runs and
varint-coded back-references), but distances are unbounded within
``len(base) + position`` instead of capped at the 64 KiB window — a code
update legitimately copies from anywhere in the previous version.
Decoding seeds the output buffer with the base and returns only the
reconstructed tail, so ``delta_apply(base, delta_compress(base, target))
== target`` for all byte strings.

Both directions own the same error contract as the plain codec: corrupt
or truncated delta streams raise :class:`~repro.errors.CorruptContainer`
/ :class:`~repro.errors.TruncatedStream`, and a lying declared length
raises :class:`~repro.errors.LimitExceeded` before any allocation.
"""

from __future__ import annotations

from ..errors import CorruptContainer, LimitExceeded
from ..lz.lz77 import MAX_OUTPUT_BYTES, _hash4, _MIN_MATCH
from ..lz.varint import ByteReader, ByteWriter

#: newest candidates consulted per hash bucket (mirrors repro.lz.lz77)
_MAX_CHAIN = 32
#: bucket trim threshold, bounding memory on repetitive input
_CHAIN_CAP = 4 * _MAX_CHAIN


def delta_compress(base: bytes, target: bytes) -> bytes:
    """Encode ``target`` as an LZ77 token stream over ``base + target``.

    With ``base == b""`` this degenerates to self-referential LZ77 of
    ``target`` (the standalone-patch path).  The stream declares
    ``len(target)``; base bytes are never re-emitted, only referenced.
    """
    data = base + target
    origin = len(base)
    n = len(data)
    writer = ByteWriter()
    writer.write_uvarint(len(target))
    table: dict = {}
    table_get = table.get
    table_setdefault = table.setdefault

    # Seed the hash table with the base region (sparsely for big bases:
    # every position up to 64 KiB, then every other byte — match starts
    # are still dense enough to find long copies, and seeding stays
    # linear with a small constant).
    step = 1 if origin <= (1 << 16) else 2
    pos = 0
    while pos + _MIN_MATCH <= origin:
        chain = table_setdefault(_hash4(data, pos), [])
        chain.append(pos)
        if len(chain) > _CHAIN_CAP:
            del chain[:-_MAX_CHAIN]
        pos += step

    pos = origin
    literal_start = origin

    def flush_literals(end: int) -> None:
        if end > literal_start:
            writer.write_uvarint(0)
            writer.write_uvarint(end - literal_start)
            writer.write_bytes(data[literal_start:end])

    while pos + _MIN_MATCH <= n:
        key = _hash4(data, pos)
        candidates = table_get(key)
        best_len = 0
        best_dist = 0
        if candidates:
            limit = n - pos
            lo = len(candidates) - _MAX_CHAIN
            if lo < 0:
                lo = 0
            for cidx in range(len(candidates) - 1, lo - 1, -1):
                cand = candidates[cidx]
                if best_len:
                    if best_len >= limit:
                        break
                    if data[cand + best_len] != data[pos + best_len]:
                        continue
                length = 0
                while (length + 16 <= limit
                       and data[cand + length:cand + length + 16]
                       == data[pos + length:pos + length + 16]):
                    length += 16
                while (length < limit
                       and data[cand + length] == data[pos + length]):
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = pos - cand
        if best_len >= _MIN_MATCH:
            flush_literals(pos)
            writer.write_uvarint(best_len - _MIN_MATCH + 1)
            writer.write_uvarint(best_dist)
            end = pos + best_len
            insert_step = 1 if best_len <= 32 else 4
            while pos < end and pos + _MIN_MATCH <= n:
                chain = table_setdefault(_hash4(data, pos), [])
                chain.append(pos)
                if len(chain) > _CHAIN_CAP:
                    del chain[:-_MAX_CHAIN]
                pos += insert_step
            pos = end
            literal_start = pos
        else:
            chain = table_setdefault(key, [])
            chain.append(pos)
            if len(chain) > _CHAIN_CAP:
                del chain[:-_MAX_CHAIN]
            pos += 1
    flush_literals(n)
    return writer.getvalue()


def delta_apply(base: bytes, delta: bytes,
                max_output: int = MAX_OUTPUT_BYTES) -> bytes:
    """Inverse of :func:`delta_compress` given the same ``base``.

    The output buffer is seeded with ``base`` so back-references resolve
    across the boundary; only the reconstructed tail is returned.  Every
    token is validated against the declared size before materializing,
    matching :func:`repro.lz.lz77.decompress`'s hostile-input contract.
    """
    reader = ByteReader(delta)
    expected = reader.read_uvarint()
    if expected > max_output:
        raise LimitExceeded(
            f"delta stream declares {expected} output bytes, "
            f"limit {max_output}", offset=0, section="delta")
    origin = len(base)
    out = bytearray(base)
    total = origin + expected
    while len(out) < total:
        token_at = reader.position
        tag = reader.read_uvarint()
        if tag == 0:
            length = reader.read_uvarint()
            if length > total - len(out):
                raise CorruptContainer(
                    f"corrupt delta stream: literal run of {length} overruns "
                    f"the declared {expected}-byte output",
                    offset=token_at, section="delta")
            out += reader.read_bytes(length)
        else:
            length = tag + _MIN_MATCH - 1
            dist = reader.read_uvarint()
            if length > total - len(out):
                raise CorruptContainer(
                    f"corrupt delta stream: copy of {length} overruns the "
                    f"declared {expected}-byte output",
                    offset=token_at, section="delta")
            if dist == 0 or dist > len(out):
                raise CorruptContainer(
                    f"corrupt delta stream: distance {dist} at output "
                    f"size {len(out)}", offset=token_at, section="delta")
            start = len(out) - dist
            if dist >= length:
                out += out[start:start + length]
            else:
                chunk = bytes(out[start:])
                while len(chunk) < length:
                    chunk += chunk
                out += chunk[:length]
    return bytes(out[origin:])


__all__ = ["delta_apply", "delta_compress"]
