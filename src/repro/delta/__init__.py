"""Delta containers and shared fleet dictionaries — the update path.

``repro.delta`` turns the split-stream container layout into a code-
update subsystem: a fleet holding container ``v_N`` fetches ``v_N+1``
as a small, self-describing **patch** instead of a full transfer.

* :mod:`repro.delta.bdelta` — windowed byte deltas (LZ77 seeded with
  the base buffer);
* :mod:`repro.delta.patch` — the patch artifact: SHA-256-named base
  and target, per-section ops over the container's blob table,
  verified application, composable chains;
* :mod:`repro.delta.shared` — corpus-trained shared base dictionaries
  (zero-function containers related programs diff small against).

The serve stack speaks patches over ``GET_DELTA`` (docs/PROTOCOL.md),
the ``ssd-delta`` codec (wire id 4) wraps standalone patches into v3
envelopes, and ``ssd delta make|apply|push`` drives it from the CLI.
See docs/DELTA.md for the format and the negotiation protocol.
"""

from __future__ import annotations

from ..obs import REGISTRY
from .bdelta import delta_apply, delta_compress
from .patch import (
    EMPTY_BASE_HASH,
    PATCH_VERSION,
    PatchInfo,
    apply_chain,
    apply_patch,
    is_patch,
    make_patch,
    patch_info,
)
from .shared import (
    DEFAULT_BUDGET,
    SHARED_BASE_NAME,
    count_base_entries,
    is_shared_base,
    train_shared_base,
)

BYTES_SAVED = REGISTRY.counter(
    "delta_bytes_saved_total",
    "Full-transfer bytes avoided by applying delta patches "
    "(full size minus patch size, summed over successful applies).")
FALLBACKS = REGISTRY.counter(
    "delta_fallback_total",
    "Delta fetches that fell back to a full container transfer, by reason.")
PATCH_BYTES = REGISTRY.histogram(
    "delta_patch_bytes",
    "Size in bytes of delta patches produced or applied.",
    buckets=(64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
             262144.0, 1048576.0))

__all__ = [
    "BYTES_SAVED",
    "DEFAULT_BUDGET",
    "EMPTY_BASE_HASH",
    "FALLBACKS",
    "PATCH_BYTES",
    "PATCH_VERSION",
    "SHARED_BASE_NAME",
    "PatchInfo",
    "apply_chain",
    "apply_patch",
    "count_base_entries",
    "delta_apply",
    "delta_compress",
    "is_patch",
    "is_shared_base",
    "make_patch",
    "patch_info",
    "train_shared_base",
]
