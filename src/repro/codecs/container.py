"""Container format v3: the multi-codec envelope.

Version 3 decouples the archive container from the decoder (the VXA
argument): instead of extending the SSD section layout per codec, v3 is a
thin checksummed envelope around an opaque codec payload, tagged with the
codec's wire id so readers dispatch without decoding anything.

Byte layout (varints unless stated)::

    magic         b"SSD3"
    version       u8 (= 3)
    codec wire id u8 (1 = ssd, 2 = brisc, 3 = lz77-raw; 0 reserved)
    payload       uvarint length + bytes + u32 CRC32 (over the payload)
    container CRC u32 CRC32 over everything after the magic and before
                  this field

The ``ssd`` codec keeps writing its native v2 layout — v3 exists for the
*other* codecs, so every pre-v3 container on disk stays byte-identical
and loads unchanged.  ``repro.core.container`` recognizes the v3 magic
only enough to refuse it with a pointer here; decoding the payload is the
registered codec's job (:func:`repro.codecs.open_any`).

Like the core parser, this is a hostile-input boundary: failures raise
``repro.errors`` types and :class:`~repro.core.container.DecodeLimits`
bounds allocation.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple

from ..core.container import (
    DEFAULT_LIMITS,
    MAGIC_V3,
    ContainerError,
    DecodeLimits,
    IntegrityReport,
    SectionSpan,
)
from ..errors import ChecksumMismatch, CorruptContainer, LimitExceeded
from ..lz.varint import ByteReader, ByteWriter

#: the version byte v3 envelopes carry
ENVELOPE_VERSION = 3


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def wrap(wire_id: int, payload: bytes) -> bytes:
    """Wrap a codec payload in a v3 envelope."""
    if not 1 <= wire_id <= 0xFF:
        raise ValueError(f"codec wire id must be in 1..255, got {wire_id}")
    writer = ByteWriter()
    writer.write_bytes(MAGIC_V3)
    writer.write_u8(ENVELOPE_VERSION)
    writer.write_u8(wire_id)
    writer.write_uvarint(len(payload))
    writer.write_bytes(payload)
    writer.write_u32(_crc(payload))
    writer.write_u32(_crc(writer.getvalue()[len(MAGIC_V3):]))
    return writer.getvalue()


def unwrap(data: bytes,
           limits: DecodeLimits = DEFAULT_LIMITS,
           trace: Optional[List[SectionSpan]] = None,
           strict: bool = True) -> Tuple[int, bytes]:
    """Inverse of :func:`wrap`: ``(codec wire id, payload)``.

    ``trace``/``strict`` mirror :func:`repro.core.container.parse`: with
    ``strict=False`` CRC mismatches are recorded in the trace instead of
    raising, so :func:`integrity_report` can keep walking.
    """
    reader = ByteReader(data)
    if reader.read_bytes(4) != MAGIC_V3:
        raise ContainerError("bad magic; not a v3 container",
                             section="header", offset=0)
    version = reader.read_u8()
    if version != ENVELOPE_VERSION:
        raise ContainerError(f"unsupported envelope version {version}",
                             section="header", offset=4)
    wire_id = reader.read_u8()
    if wire_id == 0:
        raise ContainerError("codec wire id 0 is reserved",
                             section="header", offset=5)
    length_offset = reader.position
    length = reader.read_uvarint()
    if length > limits.max_blob_output:
        raise LimitExceeded(
            f"payload of {length} bytes (limit {limits.max_blob_output})",
            section="payload", offset=length_offset)
    data_offset = reader.position
    payload = reader.read_bytes(length)
    crc_offset = reader.position
    stored = reader.read_u32()
    crc_ok = _crc(payload) == stored
    if trace is not None:
        trace.append(SectionSpan(name="payload", length_offset=length_offset,
                                 data_offset=data_offset, length=length,
                                 crc_offset=crc_offset, crc_ok=crc_ok))
    if strict and not crc_ok:
        raise ChecksumMismatch(
            f"payload CRC32 mismatch: stored {stored:#010x}, "
            f"computed {_crc(payload):#010x}",
            section="payload", offset=data_offset)
    container_crc_offset = reader.position
    body = data[len(MAGIC_V3):container_crc_offset]
    stored_container = reader.read_u32()
    container_ok = _crc(body) == stored_container
    if trace is not None:
        trace.append(SectionSpan(name="container", length_offset=-1,
                                 data_offset=len(MAGIC_V3), length=len(body),
                                 crc_offset=container_crc_offset,
                                 crc_ok=container_ok))
    if strict and not container_ok:
        raise ChecksumMismatch(
            f"container CRC32 mismatch: stored {stored_container:#010x}, "
            f"computed {_crc(body):#010x}",
            section="container", offset=container_crc_offset)
    if not reader.at_end():
        raise ContainerError(f"{reader.remaining} trailing bytes in container",
                             offset=reader.position)
    return wire_id, payload


def peek_wire_id(data: bytes) -> int:
    """The codec wire id of a v3 container, without decoding anything."""
    if data[:4] != MAGIC_V3:
        raise ContainerError("bad magic; not a v3 container",
                             section="header", offset=0)
    if len(data) < 6:
        raise ContainerError("truncated v3 header", section="header",
                             offset=len(data))
    return data[5]


def integrity_report(data: bytes,
                     limits: DecodeLimits = DEFAULT_LIMITS) -> IntegrityReport:
    """Structural + checksum walk over a v3 envelope (never raises).

    Covers the envelope only — the payload CRC validates the codec bytes
    as a unit; payload-internal structure is the codec's own concern.
    """
    spans: List[SectionSpan] = []
    report = IntegrityReport(version=3, spans=spans)
    try:
        unwrap(data, limits=limits, trace=spans, strict=False)
    except CorruptContainer as exc:
        report.error = str(exc)
    return report
