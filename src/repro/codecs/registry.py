"""The process-wide codec registry.

Codecs are addressed two ways: by *string id* (``"ssd"``, ``"brisc"``,
``"lz77-raw"``) everywhere humans and protocols name them, and by *wire
id* (the byte in a v3 envelope) when dispatching container bytes.

Built-in codecs register lazily, entry-point style: the table maps a
codec id to a ``"module:attr"`` target that is imported only on first
use, so ``import repro.codecs`` stays cheap and a new codec is one module
plus one :func:`register_lazy` call — no central edits.  Third-party
codecs call :func:`register` (an instance) or :func:`register_lazy` (a
target string) at import time.
"""

from __future__ import annotations

import importlib
import threading
from typing import Dict, List

from ..core.container import ContainerError
from .base import Codec


class UnknownCodec(ContainerError):
    """No registered codec matches the requested id.

    A :class:`~repro.core.container.ContainerError` (hence
    ``CorruptContainer``), because the common way to hit it is a v3
    container whose codec-id byte names nothing we can decode.
    """


_LOCK = threading.Lock()
#: instantiated codecs, by id
_CODECS: Dict[str, Codec] = {}
#: lazy "module:attr" registration targets, by id
_LAZY: Dict[str, str] = {
    "ssd": "repro.codecs.ssd:SsdCodec",
    "brisc": "repro.codecs.brisc:BriscCodec",
    "lz77-raw": "repro.codecs.lz77raw:Lz77RawCodec",
    "ssd-delta": "repro.codecs.delta:DeltaCodec",
    "auto": "repro.codecs.auto:AutoCodec",
}


def register(codec: Codec, replace: bool = False) -> None:
    """Register a codec instance under its ``codec_id``."""
    if not codec.codec_id:
        raise ValueError("codec has no codec_id")
    with _LOCK:
        if not replace and (codec.codec_id in _CODECS
                            or codec.codec_id in _LAZY):
            raise ValueError(f"codec {codec.codec_id!r} already registered")
        _LAZY.pop(codec.codec_id, None)
        _CODECS[codec.codec_id] = codec


def register_lazy(codec_id: str, target: str, replace: bool = False) -> None:
    """Register a codec by entry-point target (``"module:ClassName"``).

    The module is imported (and the class instantiated) on first
    :func:`get_codec` lookup.
    """
    if ":" not in target:
        raise ValueError(f"target must be 'module:attr', got {target!r}")
    with _LOCK:
        if not replace and (codec_id in _CODECS or codec_id in _LAZY):
            raise ValueError(f"codec {codec_id!r} already registered")
        _CODECS.pop(codec_id, None)
        _LAZY[codec_id] = target


def _load(codec_id: str, target: str) -> Codec:
    module_name, _, attr = target.partition(":")
    module = importlib.import_module(module_name)
    codec = getattr(module, attr)()
    if not isinstance(codec, Codec):
        raise TypeError(f"{target} is not a repro.codecs.Codec")
    if codec.codec_id != codec_id:
        raise ValueError(f"{target} has codec_id {codec.codec_id!r}, "
                         f"registered as {codec_id!r}")
    return codec


def get_codec(codec_id: str) -> Codec:
    """Look up (instantiating lazily if needed) the codec for ``codec_id``."""
    with _LOCK:
        codec = _CODECS.get(codec_id)
        if codec is not None:
            return codec
        target = _LAZY.get(codec_id)
    if target is None:
        raise UnknownCodec(f"unknown codec id {codec_id!r} "
                           f"(registered: {', '.join(codec_ids())})")
    loaded = _load(codec_id, target)
    with _LOCK:
        # Another thread may have won the race; first registration sticks.
        codec = _CODECS.setdefault(codec_id, loaded)
    return codec


def codec_ids() -> List[str]:
    """All registered codec ids, sorted."""
    with _LOCK:
        return sorted(set(_CODECS) | set(_LAZY))


def by_wire_id(wire_id: int) -> Codec:
    """The codec whose v3 envelope byte is ``wire_id``.

    Raises :class:`UnknownCodec` (a ``CorruptContainer``) when no codec
    claims the byte — the typed failure a hostile codec-id byte must
    produce.
    """
    for codec_id in codec_ids():
        codec = get_codec(codec_id)
        if codec.wire_id and codec.wire_id == wire_id:
            return codec
    raise UnknownCodec(f"no registered codec has wire id {wire_id}",
                       section="header", offset=5)
