"""Pluggable program codecs: one interface, many compression schemes.

SSD is one point in a design space (split-stream dictionaries vs. pattern
dictionaries vs. plain LZ); this package is the seam that lets the rest
of the stack — CLI, code server, JIT, experiments — treat them uniformly:

* :class:`Codec` / :class:`CodecReader` / :class:`CompressedProgram` —
  the interface contract (``repro.codecs.base``);
* the registry (``repro.codecs.registry``) — string codec ids, lazy
  entry-point-style registration; built-ins are ``ssd``, ``brisc``,
  ``lz77-raw`` and the profile-guided ``auto`` selector;
* the v3 container envelope (``repro.codecs.container``) — a codec-id
  byte plus a checksummed opaque payload, so non-SSD codecs get durable
  containers without touching the SSD layout;
* dispatch (``repro.codecs.dispatch``) — :func:`open_any` and friends,
  which route v1/v2 bytes to ``ssd`` and v3 bytes to whichever codec the
  envelope names.

See docs/CODECS.md for the contract and how to register a new codec.
"""

from .auto import AutoSelection, FunctionChoice, select
from .base import (
    Codec,
    CodecReader,
    CompressedProgram,
    FunctionBlobReader,
    SimpleCompressed,
)
from .dispatch import (
    codec_of,
    compress_with,
    decompress_any,
    integrity_report_any,
    open_any,
)
from .registry import (
    UnknownCodec,
    by_wire_id,
    codec_ids,
    get_codec,
    register,
    register_lazy,
)

__all__ = [
    "AutoSelection",
    "Codec",
    "CodecReader",
    "CompressedProgram",
    "FunctionBlobReader",
    "FunctionChoice",
    "SimpleCompressed",
    "UnknownCodec",
    "by_wire_id",
    "codec_ids",
    "codec_of",
    "compress_with",
    "decompress_any",
    "get_codec",
    "integrity_report_any",
    "open_any",
    "register",
    "register_lazy",
    "select",
]
