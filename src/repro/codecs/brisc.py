"""The ``brisc`` codec: pattern-dictionary compression as a container.

``repro.brisc`` historically produced only in-memory
:class:`~repro.brisc.codec.BriscCompressed` objects — no container, no
server path, no CLI reach.  This module gives it real bytes: the trained
external dictionary is *embedded* in the payload (trained on the program
itself when none is supplied), so a BRISC container is self-contained
exactly like an SSD one, and the dictionary bytes are charged to the
compressed size.

Payload layout inside the v3 envelope (varints unless stated)::

    program name    (uvarint length + utf-8)
    entry function index
    function count
    per function:   name (uvarint length + utf-8)
    dictionary      (uvarint length + serialized PatternDictionary, b"BRD1")
    per function:   code blob (uvarint length + bytes)

Functions decode independently (BRISC is interpretable), so the reader
serves per-function requests without touching other blobs.
"""

from __future__ import annotations

import hashlib
from typing import Any, List, Optional

from ..brisc.codec import compress_function, decompress_function
from ..brisc.patterns import DEFAULT_BUDGET, PatternDictionary, train
from ..brisc.serialize import deserialize_dictionary, serialize_dictionary
from ..core.container import DEFAULT_LIMITS, DecodeLimits
from ..errors import LimitExceeded, ReproError, as_corrupt
from ..isa import Function, Program
from ..lz.varint import ByteReader, ByteWriter
from .base import Codec, CodecReader, CompressedProgram, FunctionBlobReader, SimpleCompressed
from .container import wrap


class BriscReader(FunctionBlobReader):
    """Per-function decode over an embedded-dictionary BRISC payload."""

    codec_id = "brisc"

    def __init__(self, *, program_name: str, entry: int,
                 function_names: List[str], blobs: List[bytes],
                 dictionary: PatternDictionary,
                 container_hash: Optional[str] = None) -> None:
        super().__init__(program_name=program_name, entry=entry,
                         function_names=function_names,
                         container_hash=container_hash)
        self._blobs = blobs
        self._dictionary = dictionary

    def _decode_function(self, findex: int) -> Function:
        return decompress_function(self._blobs[findex],
                                   self._function_names[findex],
                                   self._dictionary)


def _read_name(reader: ByteReader, what: str, limit: int = 1 << 16) -> str:
    length = reader.read_uvarint()
    if length > limit:
        raise LimitExceeded(f"{what} of {length} bytes", section="header",
                            offset=reader.position)
    return reader.read_bytes(length).decode("utf-8")


class BriscCodec(Codec):
    """The paper's prior system (PLDI'97), containerized."""

    codec_id = "brisc"
    wire_id = 2
    description = ("byte-coded pattern-dictionary compression (BRISC, the "
                   "paper's prior system); dictionary embedded in the "
                   "container")

    def compress(self, program: Program, *,
                 dictionary: Optional[PatternDictionary] = None,
                 budget: int = DEFAULT_BUDGET,
                 **options: Any) -> CompressedProgram:
        """Compress against ``dictionary`` (trained on ``program`` itself
        when omitted — the self-contained-container default).  Other
        ``options`` are accepted for interface uniformity and ignored."""
        if dictionary is None:
            dictionary = train([program], budget=budget)
        dict_blob = serialize_dictionary(dictionary)
        blobs = [compress_function(fn, dictionary)
                 for fn in program.functions]
        writer = ByteWriter()
        name = program.name.encode("utf-8")
        writer.write_uvarint(len(name))
        writer.write_bytes(name)
        writer.write_uvarint(program.entry)
        writer.write_uvarint(len(program.functions))
        names_start = len(writer)
        for fn in program.functions:
            fn_name = fn.name.encode("utf-8")
            writer.write_uvarint(len(fn_name))
            writer.write_bytes(fn_name)
        names_bytes = len(writer) - names_start
        writer.write_uvarint(len(dict_blob))
        writer.write_bytes(dict_blob)
        for blob in blobs:
            writer.write_uvarint(len(blob))
            writer.write_bytes(blob)
        data = wrap(self.wire_id, writer.getvalue())
        return SimpleCompressed(self.codec_id, data, {
            "names": names_bytes,
            "dictionary": len(dict_blob),
            "code": sum(len(blob) for blob in blobs),
            "envelope": len(data) - len(writer.getvalue()),
        })

    def open_payload(self, payload: bytes,
                     limits: DecodeLimits = DEFAULT_LIMITS) -> CodecReader:
        try:
            reader = ByteReader(payload)
            program_name = _read_name(reader, "program name")
            entry = reader.read_uvarint()
            function_count = reader.read_uvarint()
            if function_count > limits.max_functions:
                raise LimitExceeded(
                    f"container declares {function_count} functions "
                    f"(limit {limits.max_functions})",
                    section="header", offset=reader.position)
            function_names = [_read_name(reader, f"function name {findex}")
                              for findex in range(function_count)]
            dict_length = reader.read_uvarint()
            if dict_length > limits.max_blob_output:
                raise LimitExceeded(
                    f"dictionary of {dict_length} bytes",
                    section="dictionary", offset=reader.position)
            dictionary = deserialize_dictionary(reader.read_bytes(dict_length))
            blobs = [reader.read_bytes(reader.read_uvarint())
                     for _ in range(function_count)]
            if not reader.at_end():
                raise as_corrupt(
                    ValueError(f"{reader.remaining} trailing payload bytes"))
        except ReproError:
            raise
        except (ValueError, EOFError) as exc:
            raise as_corrupt(exc) from exc
        return BriscReader(
            program_name=program_name, entry=entry,
            function_names=function_names, blobs=blobs,
            dictionary=dictionary,
            container_hash=hashlib.sha256(payload).hexdigest())
