"""The ``lz77-raw`` codec: byte-oriented LZ77 over plain VM bytecode.

The paper's canonical *non*-interpretable baseline is stream-oriented LZ
over the raw instruction encoding (section 2).  Containerizing it per
function — each function's dense VM bytecode is LZ77-compressed
independently — keeps the per-function decode property the serve/JIT
layers need, at the cost of the cross-function matches a whole-program
stream would find.  That makes it the honest floor codec: any
interpretable scheme (SSD, BRISC) should beat it on ratio, and the
``auto`` selector measures by how much.

Payload layout inside the v3 envelope (varints unless stated)::

    program name    (uvarint length + utf-8)
    entry function index
    function count
    per function:   name (uvarint length + utf-8)
    per function:   LZ77 blob (uvarint length + bytes) of the function's
                    VM bytecode (repro.isa.encoding.encode_function)
"""

from __future__ import annotations

import hashlib
from typing import Any, List, Optional

from ..core.container import DEFAULT_LIMITS, DecodeLimits
from ..errors import LimitExceeded, ReproError, as_corrupt
from ..isa import Function, Program
from ..isa.encoding import decode_function, encode_function
from ..lz import lz77
from ..lz.varint import ByteReader, ByteWriter
from .base import Codec, CodecReader, CompressedProgram, FunctionBlobReader, SimpleCompressed
from .container import wrap


class Lz77RawReader(FunctionBlobReader):
    """Per-function decode over LZ77-compressed VM bytecode."""

    codec_id = "lz77-raw"

    def __init__(self, *, program_name: str, entry: int,
                 function_names: List[str], blobs: List[bytes],
                 max_blob_output: int,
                 container_hash: Optional[str] = None) -> None:
        super().__init__(program_name=program_name, entry=entry,
                         function_names=function_names,
                         container_hash=container_hash)
        self._blobs = blobs
        self._max_blob_output = max_blob_output

    def _decode_function(self, findex: int) -> Function:
        raw = lz77.decompress(self._blobs[findex],
                              max_output=self._max_blob_output)
        reader = ByteReader(raw)
        function = decode_function(reader, self._function_names[findex])
        if not reader.at_end():
            raise as_corrupt(
                ValueError(f"{reader.remaining} trailing bytecode bytes"),
                section=f"items[{findex}]")
        return function


class Lz77RawCodec(Codec):
    """Byte-oriented LZ77 over dense VM bytecode (the baseline floor)."""

    codec_id = "lz77-raw"
    wire_id = 3
    description = ("byte-oriented LZ77 over plain VM bytecode, compressed "
                   "per function (non-interpretable baseline)")

    def compress(self, program: Program, **options: Any) -> CompressedProgram:
        """Compress each function's VM bytecode with LZ77.  ``options``
        are accepted for interface uniformity and ignored."""
        blobs = [lz77.compress(encode_function(fn))
                 for fn in program.functions]
        writer = ByteWriter()
        name = program.name.encode("utf-8")
        writer.write_uvarint(len(name))
        writer.write_bytes(name)
        writer.write_uvarint(program.entry)
        writer.write_uvarint(len(program.functions))
        names_start = len(writer)
        for fn in program.functions:
            fn_name = fn.name.encode("utf-8")
            writer.write_uvarint(len(fn_name))
            writer.write_bytes(fn_name)
        names_bytes = len(writer) - names_start
        for blob in blobs:
            writer.write_uvarint(len(blob))
            writer.write_bytes(blob)
        data = wrap(self.wire_id, writer.getvalue())
        return SimpleCompressed(self.codec_id, data, {
            "names": names_bytes,
            "code": sum(len(blob) for blob in blobs),
            "envelope": len(data) - len(writer.getvalue()),
        })

    def open_payload(self, payload: bytes,
                     limits: DecodeLimits = DEFAULT_LIMITS) -> CodecReader:
        try:
            reader = ByteReader(payload)
            name_length = reader.read_uvarint()
            if name_length > 1 << 16:
                raise LimitExceeded(f"program name of {name_length} bytes",
                                    section="header", offset=reader.position)
            program_name = reader.read_bytes(name_length).decode("utf-8")
            entry = reader.read_uvarint()
            function_count = reader.read_uvarint()
            if function_count > limits.max_functions:
                raise LimitExceeded(
                    f"container declares {function_count} functions "
                    f"(limit {limits.max_functions})",
                    section="header", offset=reader.position)
            function_names: List[str] = []
            for findex in range(function_count):
                fn_length = reader.read_uvarint()
                if fn_length > 1 << 16:
                    raise LimitExceeded(
                        f"function name of {fn_length} bytes",
                        section="header", offset=reader.position)
                function_names.append(
                    reader.read_bytes(fn_length).decode("utf-8"))
            blobs = [reader.read_bytes(reader.read_uvarint())
                     for _ in range(function_count)]
            if not reader.at_end():
                raise as_corrupt(
                    ValueError(f"{reader.remaining} trailing payload bytes"))
        except ReproError:
            raise
        except (ValueError, EOFError) as exc:
            raise as_corrupt(exc) from exc
        return Lz77RawReader(
            program_name=program_name, entry=entry,
            function_names=function_names, blobs=blobs,
            max_blob_output=limits.max_blob_output,
            container_hash=hashlib.sha256(payload).hexdigest())
