"""Codec interfaces: what a pluggable program codec must provide.

A *codec* turns a :class:`repro.isa.Program` into container bytes and
back.  SSD is one point in that design space; BRISC and raw LZ77 are
others.  Everything above this seam — the CLI, the code server, the JIT,
the experiment tables — speaks only these three shapes:

* :class:`CompressedProgram` — compressor output: ``data`` (container
  bytes), ``size``, and a per-section ``size_report()``;
* :class:`CodecReader` — an opened container supporting incremental
  per-function decode (``function(findex)``) and whole-program
  reconstruction (``program()``); readers that additionally decode at
  basic-block granularity advertise ``supports_block_decode`` so the JIT
  can translate without materializing functions;
* :class:`Codec` — the pluggable unit: ``compress`` + ``open``.

Codecs other than SSD ship their payload inside the version-3 container
envelope (:mod:`repro.codecs.container`), which carries the codec wire id
so :func:`repro.codecs.open_any` can dispatch; SSD keeps emitting the
native v2 layout, so every pre-v3 container on disk still opens as the
``ssd`` codec.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Protocol, runtime_checkable

from ..core.container import DEFAULT_LIMITS, ContainerError, DecodeLimits
from ..errors import ReproError, as_corrupt
from ..isa import Function, Program


@runtime_checkable
class CompressedProgram(Protocol):
    """Compressor output: container bytes plus size accounting."""

    @property
    def codec_id(self) -> str:
        """Registry id of the codec that produced this container."""
        ...

    @property
    def data(self) -> bytes:
        """The container bytes (what ``open_any`` accepts)."""
        ...

    @property
    def size(self) -> int:
        """Total container size in bytes (``len(data)``)."""
        ...

    def size_report(self) -> Dict[str, int]:
        """Per-section byte accounting (section name -> bytes)."""
        ...


@runtime_checkable
class CodecReader(Protocol):
    """An opened container: incremental per-function decode."""

    @property
    def codec_id(self) -> str:
        """Registry id of the codec this reader decodes."""
        ...

    @property
    def supports_block_decode(self) -> bool:
        """True when the reader decodes at basic-block granularity
        (``decoded_items``/copy-phase surface), letting the JIT translate
        without materializing whole functions."""
        ...

    @property
    def container_hash(self) -> Optional[str]:
        """Fingerprint of the container bytes (JIT table memo key)."""
        ...

    @property
    def program_name(self) -> str: ...

    @property
    def entry(self) -> int: ...

    @property
    def function_count(self) -> int: ...

    @property
    def function_names(self) -> List[str]: ...

    def function(self, findex: int) -> Function:
        """Decode function ``findex`` (memoized, thread-safe)."""
        ...

    def program(self) -> Program:
        """Reconstruct the entire program."""
        ...


class FunctionBlobReader(ABC):
    """Reader base for codecs that store one opaque blob per function.

    Provides the memoized, thread-safe ``function()`` and ``program()``
    surface of :class:`CodecReader`; subclasses implement only
    :meth:`_decode_function`.  Decode failures are normalized through
    :func:`repro.errors.as_corrupt`, so callers see exactly one taxonomy
    regardless of what the payload decoder raised.
    """

    codec_id: str = ""
    supports_block_decode: bool = False

    def __init__(self, *, program_name: str, entry: int,
                 function_names: List[str],
                 container_hash: Optional[str] = None) -> None:
        self._program_name = program_name
        self._entry = entry
        self._function_names = function_names
        self._container_hash = container_hash
        self._fn_cache: Dict[int, Function] = {}
        self._fn_lock = threading.Lock()

    @property
    def container_hash(self) -> Optional[str]:
        return self._container_hash

    @property
    def program_name(self) -> str:
        return self._program_name

    @property
    def entry(self) -> int:
        return self._entry

    @property
    def function_names(self) -> List[str]:
        return self._function_names

    @property
    def function_count(self) -> int:
        return len(self._function_names)

    @abstractmethod
    def _decode_function(self, findex: int) -> Function:
        """Decode one function's blob (no caching, no bounds checks)."""

    def function(self, findex: int) -> Function:
        if not 0 <= findex < self.function_count:
            raise IndexError(f"function index {findex} out of range "
                             f"(container has {self.function_count})")
        cached = self._fn_cache.get(findex)
        if cached is not None:
            return cached
        with self._fn_lock:
            cached = self._fn_cache.get(findex)
            if cached is None:
                try:
                    cached = self._decode_function(findex)
                except ReproError:
                    raise
                except (ValueError, EOFError, KeyError, IndexError) as exc:
                    raise as_corrupt(exc) from exc
                self._fn_cache[findex] = cached
        return cached

    def program(self) -> Program:
        functions = [self.function(findex)
                     for findex in range(self.function_count)]
        return Program(name=self._program_name, functions=functions,
                       entry=self._entry)


class SimpleCompressed:
    """Generic :class:`CompressedProgram` for envelope-wrapped codecs."""

    def __init__(self, codec_id: str, data: bytes,
                 sections: Dict[str, int]) -> None:
        self.codec_id = codec_id
        self.data = data
        self._sections = sections

    @property
    def size(self) -> int:
        return len(self.data)

    def size_report(self) -> Dict[str, int]:
        return dict(self._sections)


class Codec(ABC):
    """One pluggable compression scheme.

    Class attributes identify the codec: ``codec_id`` is the registry
    string (what the CLI and the serve protocol carry), ``wire_id`` the
    byte stored in the v3 envelope (``0`` means the codec never appears
    on the wire itself — e.g. ``auto``, which emits some concrete codec's
    container), ``description`` a one-liner for ``ssd codecs``.
    """

    codec_id: str = ""
    wire_id: int = 0
    description: str = ""

    @abstractmethod
    def compress(self, program: Program, **options: Any) -> CompressedProgram:
        """Compress ``program`` into container bytes."""

    @abstractmethod
    def open_payload(self, payload: bytes,
                     limits: DecodeLimits = DEFAULT_LIMITS) -> CodecReader:
        """Open this codec's envelope payload (or, for ``ssd``, the
        native v1/v2 container bytes)."""

    def open(self, data: bytes,
             limits: DecodeLimits = DEFAULT_LIMITS) -> CodecReader:
        """Open full container bytes produced by this codec.

        Unwraps the v3 envelope when present (checking the stored wire id
        names *this* codec); otherwise the bytes are passed to
        :meth:`open_payload` directly, which is the v1/v2 path.
        """
        from .container import MAGIC_V3, unwrap
        if data[:4] == MAGIC_V3:
            wire_id, payload = unwrap(data, limits=limits)
            if wire_id != self.wire_id:
                raise ContainerError(
                    f"container carries codec wire id {wire_id}, "
                    f"not {self.wire_id} ({self.codec_id}); "
                    "use repro.codecs.open_any to dispatch",
                    section="header", offset=5)
            return self.open_payload(payload, limits=limits)
        return self.open_payload(data, limits=limits)

    def decompress(self, data: bytes,
                   limits: DecodeLimits = DEFAULT_LIMITS) -> Program:
        """One-call convenience: container bytes -> program."""
        return self.open(data, limits=limits).program()
