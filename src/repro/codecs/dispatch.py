"""Codec-dispatching entry points: open any container, whatever wrote it.

The one place container bytes meet the registry:

* v1/v2 bytes (magic ``SSD1``/``SSD2``) are the native SSD layout and
  open under the ``ssd`` codec — every pre-seam container loads
  unchanged;
* v3 bytes (magic ``SSD3``) carry a codec wire id in the envelope, which
  picks the registered codec; an id nothing claims is a typed
  :class:`~repro.codecs.registry.UnknownCodec` (``CorruptContainer``) —
  never a hang or a wrong decode.
"""

from __future__ import annotations

from typing import Any

from ..core.container import (
    DEFAULT_LIMITS,
    DecodeLimits,
    IntegrityReport,
    container_version,
)
from ..core.container import integrity_report as core_integrity_report
from ..errors import CorruptContainer
from ..isa import Program
from . import container as envelope
from .base import CodecReader, CompressedProgram
from .registry import by_wire_id, get_codec


def codec_of(data: bytes) -> str:
    """The codec id that decodes ``data``, without decoding anything."""
    if container_version(data) in (1, 2):
        return "ssd"
    return by_wire_id(envelope.peek_wire_id(data)).codec_id


def open_any(data: bytes,
             limits: DecodeLimits = DEFAULT_LIMITS) -> CodecReader:
    """Open container bytes under whichever codec wrote them."""
    if container_version(data) in (1, 2):
        return get_codec("ssd").open_payload(data, limits=limits)
    wire_id, payload = envelope.unwrap(data, limits=limits)
    return by_wire_id(wire_id).open_payload(payload, limits=limits)


def decompress_any(data: bytes,
                   limits: DecodeLimits = DEFAULT_LIMITS) -> Program:
    """One-call convenience: any container bytes -> program."""
    return open_any(data, limits=limits).program()


def compress_with(codec_id: str, program: Program,
                  **options: Any) -> CompressedProgram:
    """Compress ``program`` with the registered codec ``codec_id``."""
    return get_codec(codec_id).compress(program, **options)


def integrity_report_any(data: bytes,
                         limits: DecodeLimits = DEFAULT_LIMITS) -> IntegrityReport:
    """Structural + checksum walk for any container version (never raises)."""
    try:
        version = container_version(data)
    except CorruptContainer as exc:
        return IntegrityReport(version=0, error=str(exc))
    if version == 3:
        return envelope.integrity_report(data, limits=limits)
    return core_integrity_report(data, limits=limits)
