"""The ``ssd-delta`` codec: patch containers behind the codec seam.

A *patch container* is a v3 envelope (wire id 4) whose payload is a
``repro.delta`` patch.  Two flavors exist on the wire:

* **standalone** patches (base hash = SHA-256 of the empty string) are
  self-contained — applying them to ``b""`` reproduces a full SSD
  container, so ``open_any`` can decode them with no outside state.
  ``DeltaCodec.compress`` emits these, which makes ``ssd-delta`` a
  drop-in codec everywhere a codec id is accepted;
* **based** patches name a real base container by hash.  They cannot be
  opened in isolation — doing so raises a typed
  :class:`~repro.errors.DeltaError` naming the base, which is the serve
  stack's cue to fetch the base (or fall back to a full transfer).

Application is verified end to end: the patch header carries the target
SHA-256 and :func:`repro.delta.apply_patch` refuses to hand back bytes
that do not match it, so a corrupt patch can never open as a wrong
program.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.container import DEFAULT_LIMITS, DecodeLimits
from ..delta.patch import EMPTY_BASE_HASH, apply_patch, make_patch, patch_info
from ..errors import DeltaError
from ..isa import Program
from .base import Codec, CodecReader, CompressedProgram, SimpleCompressed


class _DeltaReader:
    """Reader over the container a patch reconstructs.

    Pure delegation to the inner codec's reader, re-badged so callers
    see which codec the *bytes* belonged to.  Block-granularity decode
    is not advertised: the patch payload has no random-access surface of
    its own (the inner container was materialized to open it anyway).
    """

    codec_id = "ssd-delta"
    supports_block_decode = False

    def __init__(self, inner: CodecReader) -> None:
        self._inner = inner

    @property
    def container_hash(self) -> Optional[str]:
        return self._inner.container_hash

    @property
    def program_name(self) -> str:
        return self._inner.program_name

    @property
    def entry(self) -> int:
        return self._inner.entry

    @property
    def function_count(self) -> int:
        return self._inner.function_count

    @property
    def function_names(self):
        return self._inner.function_names

    def function(self, findex: int):
        return self._inner.function(findex)

    def program(self) -> Program:
        return self._inner.program()


class DeltaCodec(Codec):
    """Patch containers: programs shipped as deltas."""

    codec_id = "ssd-delta"
    wire_id = 4
    description = ("SSD containers shipped as verified patches — "
                   "standalone (self-contained) or against a named base")

    def compress(self, program: Program, base: bytes = b"",
                 **options: Any) -> CompressedProgram:
        """Compress ``program`` and express the container as a patch.

        With ``base=b""`` (the default) the patch is standalone and the
        result opens anywhere.  With ``base`` set to another container's
        bytes, the patch is based on it — far smaller for a related
        program, but openable only where the base is held.  Remaining
        ``options`` pass through to the core SSD compressor.
        """
        from ..core.compressor import compress as core_compress
        from .container import wrap
        target = core_compress(program, **options).data
        patch = make_patch(base, target)
        data = wrap(self.wire_id, patch)
        return SimpleCompressed(self.codec_id, data, {
            "patch": len(patch),
            "envelope": len(data) - len(patch),
        })

    def open_payload(self, payload: bytes,
                     limits: DecodeLimits = DEFAULT_LIMITS) -> CodecReader:
        from .dispatch import open_any
        info = patch_info(payload)
        if info.base_hash != EMPTY_BASE_HASH:
            raise DeltaError(
                f"patch requires base container {info.base_hex[:12]}…; "
                "apply it with repro.delta.apply_patch (or fetch the base "
                "over GET_DELTA) before opening", section="patch")
        target = apply_patch(b"", payload, limits=limits)
        return _DeltaReader(open_any(target, limits=limits))


__all__ = ["DeltaCodec"]
