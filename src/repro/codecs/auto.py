"""The ``auto`` codec: profile-guided codec selection.

The first consumer the codec seam exists for (the Access-Pattern-Based
Code Compression idea: pick the scheme per code region from profile
data).  ``auto`` compresses the program with every concrete candidate
codec, weighs per-function byte costs by call hotness (a Zipf call trace
from ``repro.workloads`` — the same popularity model the buffer
experiments replay), and emits the candidate whose *container* is
smallest.  Ties go to ``ssd``, so ``auto`` never produces a larger
container than plain SSD.

``auto`` is a selector, not a wire format: its output is some concrete
codec's container (a v2 SSD container or a v3 envelope), so it has no
wire id and can never appear in an envelope's codec-id byte.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.container import ContainerError, DecodeLimits, DEFAULT_LIMITS
from ..isa import Program
from .base import Codec, CodecReader, CompressedProgram

#: concrete codecs ``auto`` chooses between, in tie-break preference order
CANDIDATE_IDS: Tuple[str, ...] = ("ssd", "brisc", "lz77-raw")


@dataclass(frozen=True)
class FunctionChoice:
    """Per-function outcome: byte cost under each codec, and the winner."""

    findex: int
    name: str
    hotness: float
    sizes: Dict[str, int]
    best: str


@dataclass(frozen=True)
class AutoSelection:
    """Everything :func:`select` measured before picking the winner."""

    program_name: str
    #: total container bytes per candidate codec id
    totals: Dict[str, int]
    #: hotness-weighted mean per-function byte cost per candidate
    weighted_costs: Dict[str, float]
    #: the candidate whose container ``auto`` emits
    chosen: str
    per_function: List[FunctionChoice]
    outputs: Dict[str, CompressedProgram]

    @property
    def output(self) -> CompressedProgram:
        return self.outputs[self.chosen]


def _hotness(program: Program, seed: int) -> List[float]:
    """Normalized call-count weights from a Zipf trace over the program.

    Uses the same phased-Zipf generator as the RAM-buffer experiments, so
    "hot" means what it means everywhere else in the repo.  Programs too
    small for a trace get uniform weights.
    """
    count = len(program.functions)
    if count < 2:
        return [1.0] * count
    from ..workloads.traces import TraceSpec, generate_trace
    trace = generate_trace(TraceSpec(function_count=count,
                                     calls_per_phase=2000, seed=seed))
    counts = Counter(trace)
    total = float(len(trace)) or 1.0
    return [counts.get(findex, 0) / total for findex in range(count)]


def _function_sizes(program: Program,
                    outputs: Dict[str, CompressedProgram]) -> Dict[str, List[int]]:
    """Per-function byte cost under each candidate codec.

    For the blob-per-function codecs this is exact (the blob length);
    for SSD the shared dictionaries are amortized over functions in
    proportion to their item-stream bytes.
    """
    from ..brisc.codec import compress_function as brisc_compress_function
    from ..brisc.patterns import train
    from ..core.container import parse
    from ..isa.encoding import encode_function
    from ..lz import lz77

    sizes: Dict[str, List[int]] = {}
    if "ssd" in outputs:
        sections = parse(outputs["ssd"].data)
        items = [len(stream) for stream in sections.item_streams]
        shared = outputs["ssd"].size - sum(items)
        total_items = sum(items) or 1
        sizes["ssd"] = [stream + (shared * stream) // total_items
                        for stream in items]
    if "brisc" in outputs:
        dictionary = train([program])
        sizes["brisc"] = [len(brisc_compress_function(fn, dictionary))
                          for fn in program.functions]
    if "lz77-raw" in outputs:
        sizes["lz77-raw"] = [len(lz77.compress(encode_function(fn)))
                             for fn in program.functions]
    return sizes


def select(program: Program, *,
           candidates: Tuple[str, ...] = CANDIDATE_IDS,
           trace_seed: int = 1234,
           **options: Any) -> AutoSelection:
    """Measure every candidate codec on ``program`` and pick a winner.

    The winner minimizes total container bytes; ties resolve in
    ``candidates`` order (``ssd`` first), so the selection is never worse
    than plain SSD.  ``options`` are forwarded to each candidate's
    ``compress`` (candidates ignore options they don't understand).
    """
    from .registry import get_codec

    outputs: Dict[str, CompressedProgram] = {}
    for codec_id in candidates:
        outputs[codec_id] = get_codec(codec_id).compress(program, **options)
    totals = {codec_id: output.size for codec_id, output in outputs.items()}
    chosen = min(candidates, key=lambda codec_id: (totals[codec_id],
                                                   candidates.index(codec_id)))

    hotness = _hotness(program, trace_seed)
    per_codec = _function_sizes(program, outputs)
    per_function: List[FunctionChoice] = []
    weighted: Dict[str, float] = {codec_id: 0.0 for codec_id in per_codec}
    for findex, fn in enumerate(program.functions):
        fn_sizes = {codec_id: column[findex]
                    for codec_id, column in per_codec.items()}
        best = min(fn_sizes, key=lambda codec_id: (fn_sizes[codec_id],
                                                   candidates.index(codec_id)))
        for codec_id, cost in fn_sizes.items():
            weighted[codec_id] += hotness[findex] * cost
        per_function.append(FunctionChoice(
            findex=findex, name=fn.name, hotness=hotness[findex],
            sizes=fn_sizes, best=best))
    return AutoSelection(program_name=program.name, totals=totals,
                         weighted_costs=weighted, chosen=chosen,
                         per_function=per_function, outputs=outputs)


class AutoCodec(Codec):
    """Profile-guided selector over the concrete registered codecs."""

    codec_id = "auto"
    wire_id = 0  # never on the wire: emits the winning codec's container
    description = ("profile-guided selector: compresses with every "
                   "concrete codec and emits the smallest container "
                   "(ties prefer ssd)")

    def compress(self, program: Program, **options: Any) -> CompressedProgram:
        return select(program, **options).output

    def open_payload(self, payload: bytes,
                     limits: DecodeLimits = DEFAULT_LIMITS) -> CodecReader:
        raise ContainerError(
            "'auto' is a selector, not a wire codec; its output is a "
            "concrete codec's container — open it with repro.codecs.open_any")
