"""The ``ssd`` codec: split-stream dictionary compression behind the seam.

A thin adapter — the real pipeline lives in ``repro.core``.  SSD keeps
emitting its native v2 container (magic ``SSD2``) rather than a v3
envelope, so every container written before the codec seam existed stays
byte-identical and opens as this codec; :class:`~repro.core.decompressor.SSDReader`
already satisfies the :class:`repro.codecs.CodecReader` surface
(including ``supports_block_decode``, which lets the JIT translate from
decoded items without materializing functions).
"""

from __future__ import annotations

from typing import Any

from ..core.compressor import compress as core_compress
from ..core.container import DEFAULT_LIMITS, DecodeLimits
from ..core.decompressor import open_container
from ..isa import Program
from .base import Codec, CodecReader, CompressedProgram


class SsdCodec(Codec):
    """The paper's system (the default codec)."""

    codec_id = "ssd"
    wire_id = 1
    description = ("split-stream dictionary compression with embedded "
                   "per-program dictionaries (the paper's system)")

    def compress(self, program: Program, **options: Any) -> CompressedProgram:
        """Compress via the core pipeline.

        ``options`` pass straight through to
        :func:`repro.core.compressor.compress` (``codec`` — the
        base-entry codec ``lz``/``delta`` — ``max_len``, ``jobs``, …).
        """
        return core_compress(program, **options)

    def open_payload(self, payload: bytes,
                     limits: DecodeLimits = DEFAULT_LIMITS) -> CodecReader:
        return open_container(payload, limits=limits)
