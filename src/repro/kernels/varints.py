"""Bulk LEB128 kernels (numpy backend).

Two shapes of varint work show up in the decompress hot path:

* **Runs** — ``count`` back-to-back varints (base-entry immediate and
  stored-target streams).  A run splits cleanly into planes: the
  continuation bits form the control plane (termination byte positions
  fall out of one ``flatnonzero``), the low 7 bits form the data plane,
  and at most nine masked shift-adds reassemble every value at once.
* **Tables** — token streams (LZ77) where varints interleave with raw
  literal bytes, so run boundaries are data-dependent.  There the kernel
  precomputes, for *every* byte offset, the value and end of the varint
  starting there (five shifted prefix-AND arrays); the consuming loop
  then walks tokens with plain list indexing and zero per-token bit work.

Both kernels are speculative — ``None`` / per-offset ``-1`` markers send
the caller back to the scalar decoder, which owns error semantics
(``TruncatedStream``/``LimitExceeded`` with exact offsets).  Values wider
than 9 LEB128 bytes are also delegated: they cannot overflow the scalar
decoder's arbitrary-precision ints but would overflow int64 lanes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: longest varint the vectorized run kernel handles (int64-safe: 9 payload
#: groups of 7 bits reach bit 62)
_MAX_RUN_VARINT = 9
#: longest varint the per-offset table handles (covers every length and
#: distance the in-tree formats emit; longer ones hit the scalar path)
_TABLE_VARINT = 5

#: size cap for :func:`uvarint_table` — the table materializes two Python
#: int lists of len(data), so very large blobs stay on the scalar path
TABLE_MAX_BYTES = 1 << 20
#: below this the two-array setup costs more than the scalar loop saves
TABLE_MIN_BYTES = 64


def try_decode_uvarint_run(data: bytes, offset: int,
                           count: int) -> Optional[Tuple[List[int], int]]:
    """Decode ``count`` consecutive uvarints starting at ``offset``.

    Returns ``(values, end_offset)`` or ``None`` when the run is
    truncated or contains a varint longer than nine bytes (scalar path
    decides whether that is an error).
    """
    if count == 0:
        return [], offset
    buf = _np.frombuffer(data, dtype=_np.uint8)[offset:].astype(_np.int64)
    ends = _np.flatnonzero((buf & 0x80) == 0)
    if len(ends) < count:
        return None  # truncated run
    ends = ends[:count]
    starts = _np.empty(count, dtype=_np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    longest = int(lengths.max())
    if longest > _MAX_RUN_VARINT:
        return None
    payload = buf & 0x7F
    values = payload[starts].copy()
    for k in range(1, longest):
        lane = lengths > k
        values[lane] |= payload[starts[lane] + k] << (7 * k)
    return values.tolist(), offset + int(ends[-1]) + 1


def try_decode_svarint_run(data: bytes, offset: int,
                           count: int) -> Optional[Tuple[List[int], int]]:
    """Zig-zag variant of :func:`try_decode_uvarint_run`."""
    if count == 0:
        return [], offset
    decoded = try_decode_uvarint_run(data, offset, count)
    if decoded is None:
        return None
    raw, end = decoded
    values = _np.asarray(raw, dtype=_np.int64)
    values = (values >> 1) ^ -(values & 1)
    return values.tolist(), end


def uvarint_table(data: bytes) -> Tuple[List[int], List[int]]:
    """Per-offset varint plane: ``(value[o], next_offset[o])`` lists.

    ``next_offset[o]`` is ``-1`` where no table-decodable varint starts
    at ``o`` (runs past the buffer, or longer than five bytes); consumers
    must detour to the scalar decoder there.
    """
    n = len(data)
    buf = _np.frombuffer(data, dtype=_np.uint8).astype(_np.int64)
    payload = _np.concatenate([buf & 0x7F, _np.zeros(4, dtype=_np.int64)])
    cont = _np.concatenate([(buf & 0x80) != 0,
                            _np.ones(4, dtype=_np.bool_)])
    # prefix[k][o]: bytes o..o+k all carry the continuation bit.
    p1 = cont[0:n]
    p2 = p1 & cont[1:n + 1]
    p3 = p2 & cont[2:n + 2]
    p4 = p3 & cont[3:n + 3]
    p5 = p4 & cont[4:n + 4]
    values = (payload[0:n]
              | _np.where(p1, payload[1:n + 1] << 7, 0)
              | _np.where(p2, payload[2:n + 2] << 14, 0)
              | _np.where(p3, payload[3:n + 3] << 21, 0)
              | _np.where(p4, payload[4:n + 4] << 28, 0))
    lengths = 1 + p1 + p2 + p3 + p4
    nexts = _np.arange(n, dtype=_np.int64) + lengths
    nexts[p5 | (nexts > n)] = -1
    return values.tolist(), nexts.tolist()
