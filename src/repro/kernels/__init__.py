"""Vectorized batch-decode kernels for the decompress hot path.

Stream VByte (Lemire & Kurz) makes byte-oriented integer decoding fast by
*splitting the stream*: control bytes in one plane, data bytes in another,
so a bulk kernel can gather per-item widths without a branch per item.
SSD's item streams, varint runs, and LZ77 token streams all have that
structure latent in them — a 16-bit dictionary index is the control word
that determines how many data bytes (0/1/2/4 target bytes) follow.  This
package restructures those streams into split planes *at decode time* and
expands them in bulk with ``numpy``.

Layering rules:

* ``repro.kernels`` never imports ``repro.core`` / ``repro.lz`` — it
  exposes backend-neutral numeric kernels over plain buffers and tables.
  The format layers call *into* it.
* ``numpy`` is an **optional extra**, never a hard dependency.  Backend
  selection happens once at import: ``numpy`` when importable, else the
  byte-identical pure-Python fallback.  ``REPRO_KERNELS=python|numpy``
  overrides (``numpy`` raises at import if unavailable, so CI can prove
  which backend ran).
* The vectorized kernels are *speculative*: they return ``None`` whenever
  the input is anything but a well-formed stream, and the caller re-runs
  the scalar decoder — which raises exactly the ``repro.errors`` taxonomy
  the format layer documents.  Corrupt input therefore pays one wasted
  scan but keeps byte-for-byte identical error behavior across backends.

Observability (``repro.obs``): ``kernel_batch_decodes_total`` counts bulk
decodes by kind and backend, ``kernel_fallback_total`` counts speculative
kernels that bailed to the scalar path, and ``kernel_items_per_batch``
histograms the batch sizes the item kernel sees.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

from ..obs import REGISTRY

__all__ = [
    "BACKEND",
    "ItemPlanes",
    "KIND_PLAIN",
    "KIND_BRANCH",
    "KIND_CALL",
    "backend",
    "has_numpy",
    "record_batch",
    "record_fallback",
    "set_backend",
]

#: Item kind codes shared by every backend (control-plane vocabulary).
KIND_PLAIN = 0
KIND_BRANCH = 1
KIND_CALL = 2

BATCH_DECODES = REGISTRY.counter(
    "kernel_batch_decodes_total",
    "Bulk decodes performed, by kernel kind and backend.")
FALLBACKS = REGISTRY.counter(
    "kernel_fallback_total",
    "Speculative vectorized decodes that bailed to the scalar path, by kind.")
ITEMS_PER_BATCH = REGISTRY.histogram(
    "kernel_items_per_batch",
    "Items decoded per bulk item-stream decode.",
    buckets=(1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0))


def _detect_backend() -> str:
    choice = os.environ.get("REPRO_KERNELS", "auto").strip().lower()
    if choice not in ("auto", "numpy", "python"):
        raise ValueError(
            f"REPRO_KERNELS must be auto|numpy|python, got {choice!r}")
    if choice == "python":
        return "python"
    try:
        import numpy  # noqa: F401
    except ImportError:
        if choice == "numpy":
            raise ImportError(
                "REPRO_KERNELS=numpy but numpy is not installed") from None
        return "python"
    return "numpy"


#: Backend selected at import time ("numpy" or "python").
BACKEND: str = _detect_backend()

_active = BACKEND


def backend() -> str:
    """The active kernel backend: ``"numpy"`` or ``"python"``."""
    return _active


def has_numpy() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def set_backend(name: str) -> str:
    """Force a backend (tests/benchmarks); returns the previous one.

    ``"numpy"`` raises :class:`ImportError` when numpy is unavailable, so
    a differential test can never silently compare python against python.
    """
    global _active
    if name not in ("numpy", "python"):
        raise ValueError(f"unknown kernel backend {name!r}")
    if name == "numpy" and not has_numpy():
        raise ImportError("numpy backend requested but numpy is not installed")
    previous = _active
    _active = name
    return previous


def record_batch(kind: str, count: Optional[int] = None,
                 backend_name: Optional[str] = None) -> None:
    """Count one bulk decode (and, for item batches, its size).

    ``backend_name`` overrides the label when a decode ran on the scalar
    path while the numpy backend is active (speculative fallback).
    """
    BATCH_DECODES.inc(kind=kind, backend=backend_name or _active)
    if count is not None:
        ITEMS_PER_BATCH.observe(count)


def record_fallback(kind: str) -> None:
    FALLBACKS.inc(kind=kind)


@dataclass
class ItemPlanes:
    """One function's item stream, split Stream-VByte style.

    The wire format interleaves a 16-bit *control* word (the dictionary
    index) with 0/1/2/4 *data* bytes (the branch displacement or callee
    index).  Decode separates them into parallel planes so downstream
    phases can run over whole functions at once:

    * ``indices``  — control plane: dictionary index per item;
    * ``kinds``    — ``KIND_PLAIN``/``KIND_BRANCH``/``KIND_CALL`` per item;
    * ``values``   — data plane, decoded: signed branch displacement (in
      items) or unsigned callee function index; 0 for plain items;
    * ``lengths``  — instructions covered per item (from the dictionary);
    * ``starts``   — exclusive prefix sum of ``lengths``: each item's
      first instruction index (the decode-side forwarding table).

    All fields are plain Python lists of ints regardless of backend, so
    consumers and differential tests see byte-identical values.
    """

    indices: List[int]
    kinds: List[int]
    values: List[int]
    lengths: List[int]
    starts: List[int]

    @property
    def count(self) -> int:
        return len(self.indices)

    @property
    def instruction_count(self) -> int:
        if not self.indices:
            return 0
        return self.starts[-1] + self.lengths[-1]
