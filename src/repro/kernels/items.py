"""Vectorized split-plane decode of SSD item streams (numpy backend).

The item stream interleaves a 16-bit control word (dictionary index) with
0/1/2/4 data bytes whose width is a *function of the control word* — the
same shape Stream VByte exploits.  The kernel runs in three passes:

1. **Boundary discovery.**  Read the 16-bit word at *every* byte offset
   and gather each offset's stride (2 + target width) from the dictionary
   table; item boundaries are then the orbit of offset 0 under
   ``next(o) = o + stride_at(o)``.  The orbit is enumerated without a
   per-item Python loop by binary jump composition: squaring the jump
   table log2(n) times yields ``2^k``-step jumps, and composing them by
   the bits of ``k`` yields every position at once (iterates of a single
   function commute, so bit order is irrelevant).
2. **Plane split.**  One gather pulls the control plane (indices, and
   through the table: kinds, lengths, target widths); padded little-endian
   reads at ``start + 2`` pull the data plane, masked per item to its
   width and sign-extended where the entry is a branch.
3. **Expansion tables.**  An exclusive prefix sum over lengths gives each
   item's first-instruction index — the decode-side forwarding table.

The kernel is speculative: any anomaly (dangling byte, unknown index,
truncated target bytes) returns ``None`` and the caller re-runs the
scalar decoder, which raises the documented ``repro.errors`` types at the
same offsets.  On well-formed streams the two backends produce identical
planes — the hypothesis differential suite pins this.
"""

from __future__ import annotations

from typing import Mapping, Optional

from . import KIND_BRANCH, KIND_CALL, KIND_PLAIN, ItemPlanes

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

_KIND_INVALID = 255
#: the item index space is 16-bit, so tables cover it fully
_TABLE_SIZE = 1 << 16


class ItemDecodeTable:
    """Dictionary metadata flattened into gather-friendly arrays.

    Built once per segment layout from ``info_of`` (16-bit index ->
    ``EntryInfo``-shaped object with ``length``/``is_branch``/``is_call``/
    ``target_size``) and cached there; every function in the segment
    reuses it.
    """

    __slots__ = ("stride", "kind", "tsize", "length")

    def __init__(self, info_of: Mapping[int, object]) -> None:
        assert _np is not None, "ItemDecodeTable requires the numpy backend"
        stride = _np.full(_TABLE_SIZE, 2, dtype=_np.int64)
        kind = _np.full(_TABLE_SIZE, _KIND_INVALID, dtype=_np.int64)
        tsize = _np.zeros(_TABLE_SIZE, dtype=_np.int64)
        length = _np.zeros(_TABLE_SIZE, dtype=_np.int64)
        for index, info in info_of.items():
            width = info.target_size if (info.is_branch or info.is_call) else 0
            stride[index] = 2 + width
            kind[index] = (KIND_BRANCH if info.is_branch
                           else KIND_CALL if info.is_call else KIND_PLAIN)
            tsize[index] = width
            length[index] = info.length
        self.stride = stride
        self.kind = kind
        self.tsize = tsize
        self.length = length


# Width-indexed constants for the data-plane extraction (widths 0/1/2/4).
def _width_tables():
    mask = _np.zeros(5, dtype=_np.int64)
    sign = _np.zeros(5, dtype=_np.int64)
    wrap = _np.zeros(5, dtype=_np.int64)
    for width in (1, 2, 4):
        mask[width] = (1 << (8 * width)) - 1
        sign[width] = 1 << (8 * width - 1)
        wrap[width] = 1 << (8 * width)
    return mask, sign, wrap


_MASK_BY_WIDTH, _SIGN_BY_WIDTH, _WRAP_BY_WIDTH = (
    _width_tables() if _np is not None else (None, None, None))


def try_decode_planes(blob: bytes,
                      table: ItemDecodeTable) -> Optional[ItemPlanes]:
    """Decode one item stream into split planes, or ``None`` on anomaly."""
    n = len(blob)
    if n == 0:
        return ItemPlanes(indices=[], kinds=[], values=[], lengths=[],
                          starts=[])
    if n < 2:
        return None  # dangling byte; scalar raises TruncatedStream
    buf = _np.frombuffer(blob, dtype=_np.uint8).astype(_np.int64)

    # Pass 1: boundary discovery.  u16 and stride at every offset, then
    # the orbit of 0 under o -> o + stride_at[o] via jump composition.
    u16_at = buf[:-1] | (buf[1:] << 8)              # u16 readable in [0, n-1)
    stride_at = table.stride[u16_at]
    jump = _np.full(n + 1, n, dtype=_np.int64)       # n is absorbing ("end")
    _np.minimum(_np.arange(n - 1, dtype=_np.int64) + stride_at, n,
                out=jump[:n - 1])
    max_items = n // 2                               # strides are >= 2
    ks = _np.arange(max_items + 1, dtype=_np.int64)
    pos = _np.zeros(max_items + 1, dtype=_np.int64)
    bit = 1
    while bit <= max_items:
        mask = (ks & bit) != 0
        pos[mask] = jump[pos[mask]]
        bit <<= 1
        if bit <= max_items:
            jump = jump[jump]
    count = int(_np.searchsorted(pos, n - 1, side="left"))
    if count == 0 or int(pos[count]) != n:
        return None  # dangling byte at the tail; scalar raises
    item_starts = pos[:count]
    # The jump table clamps at n, so re-check the last item's true end.
    last = int(item_starts[-1])
    if last + int(stride_at[last]) != n:
        return None  # target bytes truncated; scalar raises

    # Pass 2: plane split.
    indices = u16_at[item_starts]
    kinds = table.kind[indices]
    if int(kinds.max()) == _KIND_INVALID:
        return None  # unknown dictionary index; scalar raises
    widths = table.tsize[indices]
    padded = _np.concatenate([buf, _np.zeros(4, dtype=_np.int64)])
    at = item_starts + 2
    raw = (padded[at]
           | (padded[at + 1] << 8)
           | (padded[at + 2] << 16)
           | (padded[at + 3] << 24))
    values = raw & _MASK_BY_WIDTH[widths]
    negative = ((kinds == KIND_BRANCH)
                & ((values & _SIGN_BY_WIDTH[widths]) != 0))
    values = _np.where(negative, values - _WRAP_BY_WIDTH[widths], values)

    # Pass 3: expansion tables (forwarding prefix sums).
    lengths = table.length[indices]
    starts = _np.empty(count, dtype=_np.int64)
    starts[0] = 0
    _np.cumsum(lengths[:-1], out=starts[1:])
    return ItemPlanes(indices=indices.tolist(), kinds=kinds.tolist(),
                      values=values.tolist(), lengths=lengths.tolist(),
                      starts=starts.tolist())


def try_resolve_targets(planes: ItemPlanes) -> Optional[list]:
    """Branch targets in instruction units, vectorized.

    Returns a list aligned with the items — instruction index for branch
    items, ``None`` elsewhere — or ``None`` when any displacement leaves
    the function (the scalar resolver raises the documented error).
    """
    count = planes.count
    if count == 0:
        return []
    kinds = _np.asarray(planes.kinds, dtype=_np.int64)
    branches = kinds == KIND_BRANCH
    if not branches.any():
        return [None] * count
    values = _np.asarray(planes.values, dtype=_np.int64)
    target_items = _np.arange(count, dtype=_np.int64) + 1 + values
    bad = branches & ((target_items < 0) | (target_items >= count))
    if bad.any():
        return None
    starts = _np.asarray(planes.starts, dtype=_np.int64)
    resolved = starts[_np.where(branches, target_items, 0)].tolist()
    return [target if is_branch else None
            for target, is_branch in zip(resolved, branches.tolist())]
