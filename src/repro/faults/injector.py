"""Seedable, structure-aware corruption of container bytes.

Each corruption kind models a distinct real-world failure:

* ``bitflip`` / ``zero_run`` — media or transfer corruption;
* ``truncate`` / ``extend`` — interrupted writes, concatenation bugs;
* ``varint_overflow`` — a length field rewritten as an overlong LEB128
  (decoder loop-bound attack);
* ``blob_swap`` — two sections' payloads exchanged (misdirected writes);
* ``length_lie`` — a section's declared length changed while its bytes
  stay put, so the field contradicts the data (framing attack).

The injector is deterministic: corruption ``i`` under seed ``s`` is a
pure function of ``(container bytes, s, i)`` — independent of iteration
order — so any harness finding replays exactly.

Structure-aware kinds (``blob_swap``, ``length_lie``, ``varint_overflow``)
use the container's section map (:func:`repro.core.integrity_report`) to
aim at real length fields and payload ranges; on containers too small to
have usable targets they degrade to bit flips rather than silently doing
nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..core.container import SectionSpan, integrity_report
from ..errors import FaultInjectionError
from ..lz.varint import decode_uvarint, encode_uvarint

#: all corruption kinds, in the round-robin order the harness cycles
KINDS: Tuple[str, ...] = (
    "bitflip",
    "zero_run",
    "truncate",
    "extend",
    "varint_overflow",
    "blob_swap",
    "length_lie",
)

#: patch-specific corruption kinds (:class:`PatchCorruptor`)
PATCH_KINDS: Tuple[str, ...] = (
    "base_hash_lie",
    "diff_truncate",
    "chain_cycle",
    "bitflip",
)


@dataclass(frozen=True)
class Corruption:
    """One corrupted container plus provenance for replay/reporting."""

    index: int          # case number within the sweep
    kind: str
    position: int       # primary byte offset the corruption touched
    detail: str         # human-readable description of what changed
    data: bytes         # the corrupted container


class ContainerCorruptor:
    """Generates deterministic corruptions of one container."""

    def __init__(self, data: bytes, seed: int = 0,
                 kinds: Sequence[str] = KINDS) -> None:
        if len(data) < 8:
            raise FaultInjectionError(
                f"container of {len(data)} bytes is too small to corrupt "
                "meaningfully")
        unknown = [kind for kind in kinds if kind not in KINDS]
        if unknown:
            raise FaultInjectionError(f"unknown corruption kinds: {unknown}")
        self.data = bytes(data)
        self.seed = seed
        self.kinds = tuple(kinds)
        # Section map for the structure-aware kinds; tolerate anything
        # (the injector must work on already-corrupt input too).
        report = integrity_report(self.data)
        self._spans: List[SectionSpan] = [
            span for span in report.spans if span.length_offset >= 0]

    # -- case generation ---------------------------------------------------

    def corruption(self, index: int) -> Corruption:
        """The ``index``-th corruption: pure function of (data, seed, index)."""
        rng = random.Random(f"{self.seed}:{index}")
        kind = self.kinds[index % len(self.kinds)]
        position, detail, corrupted = getattr(self, f"_{kind}")(rng)
        if corrupted == self.data:
            # Degenerate draw (e.g. swapped identical payloads): replace
            # with a bit flip so every case actually perturbs the input.
            kind = "bitflip"
            position, detail, corrupted = self._bitflip(rng)
        return Corruption(index=index, kind=kind, position=position,
                          detail=detail, data=corrupted)

    def corruptions(self, count: int) -> Iterator[Corruption]:
        for index in range(count):
            yield self.corruption(index)

    # -- kinds -------------------------------------------------------------

    def _bitflip(self, rng: random.Random) -> Tuple[int, str, bytes]:
        position = rng.randrange(len(self.data))
        bit = rng.randrange(8)
        corrupted = bytearray(self.data)
        corrupted[position] ^= 1 << bit
        return position, f"flip bit {bit} at {position}", bytes(corrupted)

    def _zero_run(self, rng: random.Random) -> Tuple[int, str, bytes]:
        position = rng.randrange(len(self.data))
        length = min(rng.randint(1, 16), len(self.data) - position)
        corrupted = bytearray(self.data)
        corrupted[position:position + length] = b"\x00" * length
        return position, f"zero {length} bytes at {position}", bytes(corrupted)

    def _truncate(self, rng: random.Random) -> Tuple[int, str, bytes]:
        cut = rng.randrange(len(self.data))
        return cut, f"truncate to {cut} bytes", self.data[:cut]

    def _extend(self, rng: random.Random) -> Tuple[int, str, bytes]:
        extra = bytes(rng.randrange(256) for _ in range(rng.randint(1, 8)))
        return len(self.data), f"append {len(extra)} bytes", self.data + extra

    def _varint_overflow(self, rng: random.Random) -> Tuple[int, str, bytes]:
        """Rewrite a real length field as an overlong (>9-byte) varint."""
        if not self._spans:
            return self._bitflip(rng)
        span = rng.choice(self._spans)
        offset = span.length_offset
        try:
            _, end = decode_uvarint(self.data, offset)
        except (ValueError, EOFError):  # pragma: no cover - spans are valid
            return self._bitflip(rng)
        overlong = b"\x80" * 10 + b"\x01"
        corrupted = self.data[:offset] + overlong + self.data[end:]
        return offset, f"overlong varint for {span.name} at {offset}", corrupted

    def _blob_swap(self, rng: random.Random) -> Tuple[int, str, bytes]:
        """Exchange two sections' payload bytes (lengths/CRCs stay put)."""
        candidates = [span for span in self._spans if span.length > 0]
        if len(candidates) < 2:
            return self._bitflip(rng)
        first, second = rng.sample(candidates, 2)
        if first.data_offset > second.data_offset:
            first, second = second, first
        data = self.data
        corrupted = (data[:first.data_offset]
                     + data[second.data_offset:second.data_offset + second.length]
                     + data[first.data_offset + first.length:second.data_offset]
                     + data[first.data_offset:first.data_offset + first.length]
                     + data[second.data_offset + second.length:])
        return first.data_offset, f"swap {first.name} and {second.name}", corrupted

    def _length_lie(self, rng: random.Random) -> Tuple[int, str, bytes]:
        """Change a section's declared length without moving its bytes."""
        if not self._spans:
            return self._bitflip(rng)
        span = rng.choice(self._spans)
        delta = rng.choice([-1, 1]) * rng.randint(1, 16)
        lying = max(0, span.length + delta)
        lie = encode_uvarint(lying)
        corrupted = (self.data[:span.length_offset] + lie
                     + self.data[span.data_offset:])
        return span.length_offset, \
            f"declare {span.name} as {lying} bytes (really {span.length})", \
            corrupted


class PatchCorruptor:
    """Deterministic corruptions of a ``repro.delta`` patch artifact.

    Models the update-path attacks: a header that lies about which base
    the diff was computed against (``base_hash_lie``), a dictionary diff
    cut short in flight (``diff_truncate``), and a patch rewritten to
    name its own base as its target so chained application cycles
    (``chain_cycle``).  The contract under test is that *none* of these
    can make :func:`repro.delta.apply_patch` hand back wrong container
    bytes — applies must fail typed, which the serve client turns into a
    clean full-transfer fallback.

    Same determinism contract as :class:`ContainerCorruptor`: corruption
    ``i`` under seed ``s`` is a pure function of ``(patch, s, i)``.
    """

    #: patch header: u8 version + 32-byte base hash + 32-byte target hash
    _BASE_HASH = slice(1, 33)
    _TARGET_HASH = slice(33, 65)
    _HEADER_LEN = 65

    def __init__(self, patch: bytes, seed: int = 0,
                 kinds: Sequence[str] = PATCH_KINDS) -> None:
        if len(patch) < self._HEADER_LEN:
            raise FaultInjectionError(
                f"patch of {len(patch)} bytes is shorter than its header")
        unknown = [kind for kind in kinds if kind not in PATCH_KINDS]
        if unknown:
            raise FaultInjectionError(f"unknown corruption kinds: {unknown}")
        self.data = bytes(patch)
        self.seed = seed
        self.kinds = tuple(kinds)

    def corruption(self, index: int) -> Corruption:
        """The ``index``-th corruption: pure function of (patch, seed, index)."""
        rng = random.Random(f"patch:{self.seed}:{index}")
        kind = self.kinds[index % len(self.kinds)]
        position, detail, corrupted = getattr(self, f"_{kind}")(rng)
        if corrupted == self.data:
            kind = "bitflip"
            position, detail, corrupted = self._bitflip(rng)
        return Corruption(index=index, kind=kind, position=position,
                          detail=detail, data=corrupted)

    def corruptions(self, count: int) -> Iterator[Corruption]:
        for index in range(count):
            yield self.corruption(index)

    # -- kinds -------------------------------------------------------------

    def _bitflip(self, rng: random.Random) -> Tuple[int, str, bytes]:
        position = rng.randrange(len(self.data))
        bit = rng.randrange(8)
        corrupted = bytearray(self.data)
        corrupted[position] ^= 1 << bit
        return position, f"flip bit {bit} at {position}", bytes(corrupted)

    def _base_hash_lie(self, rng: random.Random) -> Tuple[int, str, bytes]:
        """Rewrite the header's base hash: a diff against the wrong base."""
        corrupted = bytearray(self.data)
        corrupted[self._BASE_HASH] = bytes(rng.randrange(256)
                                           for _ in range(32))
        return 1, "rewrite base hash to a random digest", bytes(corrupted)

    def _diff_truncate(self, rng: random.Random) -> Tuple[int, str, bytes]:
        """Cut the diff body short (interrupted transfer past the header)."""
        if len(self.data) <= self._HEADER_LEN:
            return self._bitflip(rng)
        cut = rng.randrange(self._HEADER_LEN, len(self.data))
        return cut, f"truncate patch to {cut} bytes", self.data[:cut]

    def _chain_cycle(self, rng: random.Random) -> Tuple[int, str, bytes]:
        """Make the patch claim its own base as its target (a -> a).

        Applied alone it fails the target-hash verification; fed to
        ``apply_chain`` it is the minimal patch-chain cycle the cycle
        detector must refuse before applying anything.
        """
        corrupted = bytearray(self.data)
        corrupted[self._TARGET_HASH] = corrupted[self._BASE_HASH]
        return 33, "set target hash = base hash (self-cycle)", bytes(corrupted)
