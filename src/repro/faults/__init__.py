"""Deterministic fault injection for containers and runtime components.

The robustness layer's attack harness.  Three pieces:

* :mod:`repro.faults.injector` — seedable corruption of container bytes
  (bit flips, truncation, varint overflow, blob swaps, length-field
  lies), structure-aware via the container's section map, plus
  patch-aware corruptions of ``repro.delta`` artifacts (base-hash
  lies, diff truncation, patch-chain cycles);
* :mod:`repro.faults.harness` — sweep driver: generate N corruptions,
  attempt decode, classify every outcome against the ``repro.errors``
  taxonomy (anything else is a finding);
* :mod:`repro.faults.runtime` — runtime fault injectors: worker
  crash/hang functions for ``repro.perf.fanout`` and deterministic
  allocation failures for the JIT translation buffer;
* :mod:`repro.faults.transport` — wire-level faults for ``repro.serve``
  (seeded drop/delay/truncate/corrupt of protocol frames) and a sweep
  asserting the server always answers or closes cleanly, never hangs;
* :mod:`repro.faults.chaos` — cluster chaos: seeded shard
  kill/hang/drain and wire flakes against a live
  ``repro.serve.cluster`` under concurrent client load, asserting zero
  client-visible failures above quorum and a clean ``E_UNAVAILABLE``
  below it.

Everything is seeded and reproducible: the same ``(container, seed,
case index)`` always produces the same corruption, so a CI failure is
replayable with ``ssd fuzz --seed``.
"""

from .chaos import CHAOS_KINDS, ChaosEvent, ChaosReport, chaos_sweep
from .injector import (
    KINDS,
    PATCH_KINDS,
    ContainerCorruptor,
    Corruption,
    PatchCorruptor,
)
from .harness import CaseOutcome, SweepReport, patch_sweep, sweep
from .runtime import AllocationFaults, crashing_worker, hanging_worker
from .transport import (
    TRANSPORT_KINDS,
    FlakyTransport,
    TransportCaseOutcome,
    TransportFault,
    TransportSweepReport,
    transport_sweep,
)

__all__ = [
    "AllocationFaults",
    "CHAOS_KINDS",
    "CaseOutcome",
    "ChaosEvent",
    "ChaosReport",
    "chaos_sweep",
    "ContainerCorruptor",
    "Corruption",
    "FlakyTransport",
    "KINDS",
    "PATCH_KINDS",
    "PatchCorruptor",
    "SweepReport",
    "TRANSPORT_KINDS",
    "TransportCaseOutcome",
    "TransportFault",
    "TransportSweepReport",
    "crashing_worker",
    "hanging_worker",
    "patch_sweep",
    "sweep",
    "transport_sweep",
]
