"""Runtime fault injectors: worker crashes/hangs and allocation failures.

``crashing_worker`` and ``hanging_worker`` are module-level functions so
they survive pickling into :class:`concurrent.futures.ProcessPoolExecutor`
workers.  They misbehave *only inside a worker process*
(``multiprocessing.parent_process()`` is set there), so when
``repro.perf.fanout`` falls back to serial execution in the parent the
same callable computes the correct result — which is exactly the
degradation contract under test.

:class:`AllocationFaults` plugs into
:class:`repro.jit.buffer.TranslationBuffer` via its ``alloc_hook`` and
deterministically fails allocations for chosen functions, driving the
JIT quarantine path without needing a buffer that is actually full.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from typing import FrozenSet, Iterable, Optional

from ..errors import BufferCapacityError


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def crashing_worker(task: int) -> int:
    """Doubles its input — but hard-exits when run in a pool worker.

    ``os._exit`` skips all cleanup, modelling a segfault/OOM-kill: the
    executor sees the process vanish and raises ``BrokenProcessPool``.
    """
    if _in_worker():
        os._exit(23)
    return task * 2


def hanging_worker(task: int) -> int:
    """Doubles its input — but stalls indefinitely in a pool worker."""
    if _in_worker():
        time.sleep(3600)
    return task * 2


class AllocationFaults:
    """Deterministic allocation-failure injector for the JIT buffer.

    Pass as ``TranslationBuffer(..., alloc_hook=AllocationFaults(...))``.
    Fails allocation for every function index in ``fail_findexes``, plus
    a seeded random ``rate`` fraction of all other requests.  ``injected``
    counts the failures actually delivered.
    """

    def __init__(self, fail_findexes: Iterable[int] = (),
                 seed: Optional[int] = None, rate: float = 0.0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.fail_findexes: FrozenSet[int] = frozenset(fail_findexes)
        self.rate = rate
        self._rng = random.Random(seed)
        self.injected = 0

    def __call__(self, findex: int, size: int) -> None:
        if findex in self.fail_findexes or \
                (self.rate > 0.0 and self._rng.random() < self.rate):
            self.injected += 1
            raise BufferCapacityError(
                f"injected allocation failure for function {findex} "
                f"({size} bytes requested)")
