"""Cluster chaos harness: seeded shard faults under concurrent client load.

The robustness layer's end-to-end verdict on ``repro.serve.cluster``.
A seeded plan drives real faults against a live :class:`LocalCluster`
while a pool of retrying clients hammers it, then the report asserts
the paper-grade contract:

* **above quorum, zero client-visible failures** — every kill, hang,
  drain, and connection-reset burst is absorbed by replica failover and
  client/router retry; a request may be slow, never wrong or lost;
* **below quorum, clean refusal** — when *every* replica of a key is
  dead, clients get a typed ``E_UNAVAILABLE`` (``UnavailableError`` /
  ``RemoteError``), deterministically, within the retry budget — not a
  hang, not a reset;
* **recovery** — restarted shards rejoin (same store, new port) and the
  same requests succeed again;
* **delta updates survive partial bases** — a ``GET_DELTA`` whose base
  lives on only one of the target's replicas is routed past the
  ``E_NO_BASE`` answers to the shard that can diff, and an unknown base
  degrades to a verified full transfer, never a wrong container.

Fault verbs reuse the existing injector vocabulary: shard **kill** is
the process twin of :func:`repro.faults.runtime.crashing_worker`
(connections reset mid-frame), **hang** the twin of
:func:`~repro.faults.runtime.hanging_worker` (a bounded sleep injected
into the decode path — bounded because a killed shard's executor must
still join), **flake** replays :class:`repro.faults.transport.FlakyTransport`
frames at the router, and **drain** is the graceful SIGTERM path.

Everything is derived from one seed; ``ChaosReport.events`` replays the
exact schedule.  CI runs this as the cluster chaos sweep
(``ssd chaos`` / fuzz-nightly).
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import compress
from ..errors import ProtocolError, RemoteError, ReproError, UnavailableError
from ..isa import assemble
from ..serve import protocol
from ..serve.client import RetryPolicy, ServeClient
from ..serve.cluster import ClusterConfig, LocalCluster
from ..serve.router import RouterConfig
from ..serve.server import ServerConfig
from ..serve.store import container_id_of
from .transport import FlakyTransport

#: chaos fault verbs, in the order the scheduler prefers them
CHAOS_KINDS = ("kill", "hang", "flake", "drain")

#: ceiling on injected hang sleeps: asyncio.run waits for the default
#: executor to finish, so a killed shard's hung decode thread must
#: wake up on its own within a bounded window for the thread to join
MAX_HANG_SECONDS = 5.0

_ASM_TEMPLATE = """
func main
    li r2, {value}
    call helper
    trap 1
    ret
end
func helper
    add r1, r2, r2
    ret
end
func spare_{value}
    li r1, {value}
    ret
end
"""


@dataclass(frozen=True)
class ChaosEvent:
    """One executed fault, for the replayable report."""

    at: float              # seconds since the load started
    kind: str              # one of CHAOS_KINDS, or "restart"
    shard_id: str
    detail: str = ""


@dataclass
class ChaosReport:
    """What the sweep did and whether the cluster honoured the contract."""

    seed: int
    clients: int
    duration: float
    events: List[ChaosEvent] = field(default_factory=list)
    requests_total: int = 0
    retries_total: int = 0
    #: exceptions clients saw while the cluster was above quorum
    failures: List[str] = field(default_factory=list)
    #: below-quorum probe observed a typed E_UNAVAILABLE refusal
    below_quorum_clean: Optional[bool] = None
    #: the same key succeeded again after replicas were restarted
    recovered: Optional[bool] = None
    #: delta update succeeded via failover; unknown base fell back clean
    delta_clean: Optional[bool] = None
    #: a router died mid-load and clients failed over with zero failures
    router_failover_clean: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return (not self.failures
                and self.below_quorum_clean is not False
                and self.recovered is not False
                and self.delta_clean is not False
                and self.router_failover_clean is not False)

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"chaos sweep seed={self.seed}: {verdict}",
            f"  load: {self.clients} clients, {self.duration:.1f}s, "
            f"{self.requests_total} requests ({self.retries_total} client "
            f"retries)",
            f"  events: " + (", ".join(
                f"{e.kind}@{e.at:.2f}s:{e.shard_id}" for e in self.events)
                or "none"),
            f"  above-quorum failures: {len(self.failures)}",
            f"  below-quorum clean refusal: {self.below_quorum_clean}",
            f"  post-restart recovery: {self.recovered}",
            f"  delta update via failover: {self.delta_clean}",
            f"  router death absorbed: {self.router_failover_clean}",
        ]
        for failure in self.failures[:5]:
            lines.append(f"    failure: {failure}")
        return "\n".join(lines)


def _build_containers(count: int) -> List[bytes]:
    return [compress(assemble(_ASM_TEMPLATE.format(value=index + 1))).data
            for index in range(count)]


class _ClientLoad:
    """N threads of mixed idempotent traffic against the router."""

    def __init__(self, host: str, port: int, container_ids: List[str],
                 clients: int, seed: int,
                 fallback: Optional[List[tuple]] = None) -> None:
        self.host = host
        self.port = port
        self.fallback = list(fallback or [])
        self.container_ids = container_ids
        self.clients = clients
        self.seed = seed
        self.stop = threading.Event()
        self.requests = 0
        self.retries = 0
        self.failures: List[str] = []
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []

    def _worker(self, index: int) -> None:
        rng = random.Random(f"{self.seed}:client:{index}")
        policy = RetryPolicy(retries=8, base_delay=0.05, max_delay=0.5,
                             seed=self.seed * 1000 + index)
        client = ServeClient(self.host, self.port, retry_policy=policy,
                             fallback=self.fallback)
        try:
            while not self.stop.is_set():
                cid = rng.choice(self.container_ids)
                op = rng.randrange(4)
                try:
                    if op == 0:
                        client.meta(cid)
                    elif op == 1:
                        client.function(cid, rng.randrange(3))
                    elif op == 2:
                        client.block(cid, 0, 0, 2)
                    else:
                        client.stats()
                except Exception as exc:  # noqa: BLE001 - the verdict
                    with self._lock:
                        self.failures.append(
                            f"client {index}: {type(exc).__name__}: {exc}")
                finally:
                    with self._lock:
                        self.requests += 1
                time.sleep(rng.uniform(0.0, 0.01))
        finally:
            with self._lock:
                self.retries += client.retry_count
            client.close()

    def start(self) -> None:
        for index in range(self.clients):
            thread = threading.Thread(target=self._worker, args=(index,),
                                      name=f"chaos-client-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def finish(self, timeout: float = 10.0) -> None:
        self.stop.set()
        for thread in self._threads:
            thread.join(timeout)


def _flake_router(host: str, port: int, seed: int, cases: int = 6) -> str:
    """Replay FlakyTransport frames at the router; it must stay up."""
    flaky = FlakyTransport(seed=seed,
                           kinds=("truncate", "corrupt", "garbage", "drop"))
    frame = protocol.encode_frame(protocol.Message(
        type=protocol.STATS, request_id=7, body=b""))
    for index in range(cases):
        fault = flaky.fault(index, len(frame))
        payload = flaky.apply(frame, fault)
        try:
            with socket.create_connection((host, port), timeout=2.0) as sock:
                if payload is not None:
                    sock.sendall(payload)
                sock.settimeout(0.25)
                try:
                    sock.recv(4096)   # ERROR frame or clean close; either ok
                except socket.timeout:
                    pass
        except OSError:
            pass
    return f"{cases} faulted frames"


def chaos_sweep(seed: int = 0, clients: int = 8, duration: float = 3.0,
                shards: int = 3, replication: int = 2,
                hang_seconds: float = 1.5,
                routers: int = 2,
                cluster: Optional[LocalCluster] = None) -> ChaosReport:
    """Run the seeded chaos plan; see the module docstring for the contract.

    ``clients`` must be >= 8 to satisfy the acceptance load.  With the
    default 3-shard/R=2 topology the quorum is 2 live shards: the main
    phase keeps at least 2 alive at every instant, the below-quorum
    phase kills exactly the 2 replicas of one key.  With ``routers >= 2``
    (the default for an owned cluster) a router-death phase runs too:
    one front-end dies under fresh load and the surviving router must
    absorb every client via address fallback.
    """
    hang_seconds = min(hang_seconds, MAX_HANG_SECONDS)
    report = ChaosReport(seed=seed, clients=clients, duration=duration)
    rng = random.Random(f"chaos:{seed}")

    owns_cluster = cluster is None
    if owns_cluster:
        cluster = LocalCluster(ClusterConfig(
            shards=shards, replication=replication, routers=routers,
            # The router response cache stays OFF here: the below-quorum
            # phase must see a live refusal from the ring, not a cached
            # answer that hides every replica being dead.
            router=RouterConfig(probe_interval=0.1, probe_timeout=0.5,
                                attempt_timeout=1.0, breaker_cooldown=0.25,
                                sync_interval=0.1, seed=seed),
            # a small cache keeps decode work (and the hang hook) hot
            server=ServerConfig(cache_bytes=1 << 15,
                                request_timeout=5.0))).start()
    host, port = cluster.address

    containers = _build_containers(4)
    ids: List[str] = []
    with cluster.client(retries=4) as seeder:
        for data in containers:
            cid, _count, _entry = seeder.put(data)
            ids.append(cid)

    started = time.monotonic()

    def note(kind: str, shard_id: str, detail: str = "") -> None:
        report.events.append(ChaosEvent(
            at=time.monotonic() - started, kind=kind, shard_id=shard_id,
            detail=detail))

    load = _ClientLoad(host, port, ids, clients=clients, seed=seed)
    load.start()
    try:
        # -- phase 1: faults above quorum (never more than one shard down) --
        schedule = list(CHAOS_KINDS)
        rng.shuffle(schedule)
        slot = duration / (len(schedule) + 1)
        hooks: Dict[str, object] = {}
        for step, kind in enumerate(schedule):
            time.sleep(slot)
            shard_id = rng.choice(cluster.shard_ids)
            if kind == "kill":
                note("kill", shard_id, "SIGKILL: connections reset")
                cluster.kill_shard(shard_id)
                time.sleep(slot * 0.5)
                spec = cluster.restart_shard(shard_id)
                note("restart", shard_id, f"back on port {spec.port}")
            elif kind == "drain":
                note("drain", shard_id, "SIGTERM: graceful drain")
                cluster.drain_shard(shard_id, timeout=5.0)
                time.sleep(slot * 0.5)
                spec = cluster.restart_shard(shard_id)
                note("restart", shard_id, f"back on port {spec.port}")
            elif kind == "hang":
                handle = cluster.handles[shard_id]
                if handle is None:
                    continue
                bounded = min(hang_seconds, MAX_HANG_SECONDS)

                def hook(cid: str, findex: int, _t: float = bounded) -> None:
                    time.sleep(_t)

                handle.server.decode_hook = hook
                hooks[shard_id] = hook
                note("hang", shard_id, f"decodes sleep {bounded:.1f}s")
            else:  # flake
                detail = _flake_router(host, port, seed=seed + step)
                note("flake", "router", detail)
        time.sleep(slot)
        # lift hangs so the drain below isn't queued behind sleeps
        for shard_id in hooks:
            handle = cluster.handles[shard_id]
            if handle is not None:
                handle.server.decode_hook = None
    finally:
        load.finish()
    report.requests_total = load.requests
    report.retries_total = load.retries
    report.failures = load.failures

    # -- phase 1b: a router dies mid-load; the other absorbs everyone -------
    if len(cluster.routers) >= 2 and cluster.routers[1].is_alive():
        addresses = cluster.addresses
        router_load = _ClientLoad(host, port, ids, clients=clients,
                                  seed=seed + 1, fallback=addresses[1:])
        router_load.start()
        try:
            time.sleep(0.4)     # clients mid-flight on the doomed router
            dead = cluster.kill_router(0)
            note("kill", "router-0", f"front-end at {dead[0]}:{dead[1]} down")
            time.sleep(0.6)     # survivors must carry the rest of the load
        finally:
            router_load.finish()
        report.requests_total += router_load.requests
        report.retries_total += router_load.retries
        report.router_failover_clean = not router_load.failures
        report.failures.extend(
            f"router-failover {failure}" for failure in router_load.failures)
        # later phases talk to the surviving router
        host, port = cluster.address

    # -- phase 2: below quorum for one key, deterministically ---------------
    target = ids[0]
    replicas = cluster.replicas_for(target)
    for shard_id in replicas:
        note("kill", shard_id, f"removing replica of {target[:12]}")
        cluster.kill_shard(shard_id)
    probe_policy = RetryPolicy(retries=2, base_delay=0.02, max_delay=0.1,
                               seed=seed)
    with ServeClient(host, port, retry_policy=probe_policy) as probe:
        try:
            probe.meta(target)
            report.below_quorum_clean = False   # must NOT succeed
        except UnavailableError:
            report.below_quorum_clean = True
        except RemoteError as exc:
            report.below_quorum_clean = (exc.code == protocol.E_UNAVAILABLE)
        except (ProtocolError, ReproError, OSError):
            report.below_quorum_clean = False   # reset/hang, not a refusal

    # -- phase 3: recovery ---------------------------------------------------
    for shard_id in replicas:
        spec = cluster.restart_shard(shard_id)
        note("restart", shard_id, f"back on port {spec.port}")
    recovery_policy = RetryPolicy(retries=6, base_delay=0.05, max_delay=0.5,
                                  seed=seed)
    with ServeClient(host, port, retry_policy=recovery_policy) as probe:
        try:
            meta = probe.meta(target)
            report.recovered = bool(meta.function_names)
        except (ReproError, OSError) as exc:
            report.recovered = False
            report.failures.append(
                f"recovery probe: {type(exc).__name__}: {exc}")

    # -- phase 4: delta update with a partially-held base --------------------
    base_local = compress(assemble(_ASM_TEMPLATE.format(value=91))).data
    target_new = compress(assemble(_ASM_TEMPLATE.format(value=92))).data
    with cluster.client(retries=6) as seeder:
        target_id, _count, _entry = seeder.put(target_new)
    delta_replicas = cluster.replicas_for(target_id)
    # Seed the base onto exactly one of the target's replicas: every
    # other replica answers E_NO_BASE and the router must fail over to
    # the one shard that can synthesize the patch.
    cluster.stores[delta_replicas[-1]].put(base_local)
    delta_policy = RetryPolicy(retries=6, base_delay=0.05, max_delay=0.5,
                               seed=seed)
    with ServeClient(host, port, retry_policy=delta_policy) as probe:
        try:
            rebuilt, used_delta = probe.update_container(base_local, target_id)
            report.delta_clean = used_delta and rebuilt == target_new
            note("delta", delta_replicas[-1],
                 "patch via failover" if used_delta else "unexpected full "
                 "fallback")
            # an unknown base must degrade to a verified full transfer
            rebuilt, used_delta = probe.update_container(b"\x00" * 64,
                                                         target_id)
            if used_delta or rebuilt != target_new:
                report.delta_clean = False
        except (ReproError, OSError) as exc:
            report.delta_clean = False
            report.failures.append(
                f"delta probe: {type(exc).__name__}: {exc}")

    if owns_cluster:
        cluster.stop()
    return report


__all__ = [
    "CHAOS_KINDS",
    "ChaosEvent",
    "ChaosReport",
    "MAX_HANG_SECONDS",
    "chaos_sweep",
]
