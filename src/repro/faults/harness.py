"""Sweep driver: corrupt N times, decode, classify every outcome.

The contract under test is the decoder's hostile-input boundary: for any
corruption, decode either succeeds (possible only for checksum-free v1
containers) or raises a :class:`repro.errors.ReproError` subtype.  Any
other exception — ``IndexError``, ``KeyError``, ``struct.error``,
``RecursionError`` — is recorded as a *finding*: a crash a malicious or
damaged archive could trigger in production.

Used three ways: the ``ssd fuzz`` CLI subcommand, the CI smoke run, and
``tests/test_faults_harness.py``'s acceptance sweep.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..errors import ReproError
from .injector import KINDS, PATCH_KINDS, ContainerCorruptor, PatchCorruptor


@dataclass(frozen=True)
class CaseOutcome:
    """Classification of one corruption case."""

    index: int
    kind: str
    position: int
    detail: str
    outcome: str          # 'typed-error' | 'decoded' | 'unexpected'
    error_type: str = ""  # exception class name when outcome != 'decoded'
    message: str = ""


@dataclass
class SweepReport:
    """Aggregate result of one fault-injection sweep."""

    seed: int
    cases: List[CaseOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.cases)

    @property
    def typed_errors(self) -> int:
        return sum(1 for case in self.cases if case.outcome == "typed-error")

    @property
    def decoded(self) -> int:
        return sum(1 for case in self.cases if case.outcome == "decoded")

    @property
    def unexpected(self) -> List[CaseOutcome]:
        return [case for case in self.cases if case.outcome == "unexpected"]

    @property
    def ok(self) -> bool:
        """True when no corruption escaped the error taxonomy."""
        return not self.unexpected

    def format(self) -> str:
        """Human-readable summary (the ``ssd fuzz`` output)."""
        lines = [f"fault sweep: {self.total} cases, seed {self.seed}"]
        by_kind = Counter(case.kind for case in self.cases)
        errors_by_type = Counter(case.error_type for case in self.cases
                                 if case.outcome == "typed-error")
        lines.append(f"  typed errors: {self.typed_errors}  "
                     f"clean decodes: {self.decoded}  "
                     f"unexpected: {len(self.unexpected)}")
        lines.append("  corruption kinds: "
                     + ", ".join(f"{kind}={count}"
                                 for kind, count in sorted(by_kind.items())))
        lines.append("  error types: "
                     + (", ".join(f"{name}={count}" for name, count
                                  in sorted(errors_by_type.items())) or "none"))
        for case in self.unexpected:
            lines.append(f"  FINDING case {case.index} [{case.kind}] "
                         f"{case.detail}: {case.error_type}: {case.message}")
        lines.append("result: " + ("OK" if self.ok else
                                   f"{len(self.unexpected)} findings"))
        return "\n".join(lines)


def sweep(container: bytes,
          cases: int = 500,
          seed: int = 0,
          decode: Optional[Callable[[bytes], object]] = None,
          kinds: Sequence[str] = KINDS) -> SweepReport:
    """Run a seeded fault-injection sweep against ``decode``.

    ``decode`` defaults to full decompression
    (:func:`repro.core.decompress`), exercising container parse,
    dictionary phase, and the copy phase.
    """
    if decode is None:
        from ..core import decompress as decode  # late import: avoid cycle
    corruptor = ContainerCorruptor(container, seed=seed, kinds=kinds)
    report = SweepReport(seed=seed)
    for corruption in corruptor.corruptions(cases):
        try:
            decode(corruption.data)
        except ReproError as exc:
            report.cases.append(CaseOutcome(
                index=corruption.index, kind=corruption.kind,
                position=corruption.position, detail=corruption.detail,
                outcome="typed-error", error_type=type(exc).__name__,
                message=str(exc)))
        except BaseException as exc:  # noqa: BLE001 - the whole point
            report.cases.append(CaseOutcome(
                index=corruption.index, kind=corruption.kind,
                position=corruption.position, detail=corruption.detail,
                outcome="unexpected", error_type=type(exc).__name__,
                message=str(exc)))
        else:
            report.cases.append(CaseOutcome(
                index=corruption.index, kind=corruption.kind,
                position=corruption.position, detail=corruption.detail,
                outcome="decoded"))
    return report


def patch_sweep(base: bytes,
                target: bytes,
                cases: int = 300,
                seed: int = 0,
                kinds: Sequence[str] = PATCH_KINDS) -> SweepReport:
    """Fault-injection sweep over the delta-update apply path.

    Builds the true ``base -> target`` patch, corrupts it ``cases``
    times, and applies each corruption to ``base``.  The apply-side
    contract is stricter than decode's: a corrupted patch must either
    raise a :class:`repro.errors.ReproError` (the serve client's signal
    to fall back to a full transfer) or — should corruption cancel out —
    reconstruct *exactly* the target bytes.  An apply that returns
    anything else is a silent wrong-container delivery and is recorded
    as a finding with ``error_type='WrongBytes'``.
    """
    from ..delta import apply_patch, make_patch  # late import: avoid cycle
    patch = make_patch(base, target)
    corruptor = PatchCorruptor(patch, seed=seed, kinds=kinds)
    report = SweepReport(seed=seed)
    for corruption in corruptor.corruptions(cases):
        try:
            rebuilt = apply_patch(base, corruption.data)
        except ReproError as exc:
            report.cases.append(CaseOutcome(
                index=corruption.index, kind=corruption.kind,
                position=corruption.position, detail=corruption.detail,
                outcome="typed-error", error_type=type(exc).__name__,
                message=str(exc)))
        except BaseException as exc:  # noqa: BLE001 - the whole point
            report.cases.append(CaseOutcome(
                index=corruption.index, kind=corruption.kind,
                position=corruption.position, detail=corruption.detail,
                outcome="unexpected", error_type=type(exc).__name__,
                message=str(exc)))
        else:
            if rebuilt == target:
                report.cases.append(CaseOutcome(
                    index=corruption.index, kind=corruption.kind,
                    position=corruption.position, detail=corruption.detail,
                    outcome="decoded"))
            else:
                report.cases.append(CaseOutcome(
                    index=corruption.index, kind=corruption.kind,
                    position=corruption.position, detail=corruption.detail,
                    outcome="unexpected", error_type="WrongBytes",
                    message=f"apply returned {len(rebuilt)} bytes that are "
                            "not the target container"))
    return report
