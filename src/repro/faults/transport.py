"""Wire-level fault injection for ``repro.serve``: the flaky transport.

The network twin of :mod:`repro.faults.injector`: instead of corrupting
container bytes at rest, it corrupts *frames in flight*.  A seeded plan
decides, per case, one of:

* ``deliver`` — the frame arrives intact (control group);
* ``drop`` — the connection closes before any byte is sent;
* ``truncate`` — a seeded prefix of the frame is sent, then the
  connection closes (the server is left waiting mid-frame);
* ``corrupt`` — one seeded byte of the frame is flipped (the frame CRC
  must catch it);
* ``delay`` — the frame arrives intact after a seeded pause;
* ``garbage`` — seeded random bytes that were never a frame.

The contract under test (:func:`transport_sweep`): for every case the
server either answers — an ERROR frame or a valid response — or the
client observes a clean close/timeout.  The server process must never
hang, crash its event loop, or stop serving well-formed requests; a
post-sweep health probe verifies the last part.  Same
``(seed, case index)`` -> same fault, so findings replay exactly like
``ssd fuzz`` ones.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..errors import FaultInjectionError, ProtocolError, ReproError

#: fault kinds the transport can inject
TRANSPORT_KINDS = ("deliver", "drop", "truncate", "corrupt", "delay",
                   "garbage")


@dataclass(frozen=True)
class TransportFault:
    """One planned wire fault."""

    index: int
    kind: str
    position: int = 0      # truncate length / corrupt offset, when relevant
    delay: float = 0.0     # seconds, for 'delay'
    detail: str = ""


class FlakyTransport:
    """Seeded per-case wire-fault planner and applier."""

    def __init__(self, seed: int = 0,
                 kinds: Sequence[str] = TRANSPORT_KINDS,
                 max_delay: float = 0.05) -> None:
        unknown = set(kinds) - set(TRANSPORT_KINDS)
        if unknown:
            raise FaultInjectionError(
                f"unknown transport fault kinds: {sorted(unknown)}")
        if not kinds:
            raise FaultInjectionError("at least one fault kind required")
        if max_delay < 0:
            raise FaultInjectionError(
                f"max_delay must be non-negative, got {max_delay}")
        self.seed = seed
        self.kinds = tuple(kinds)
        self.max_delay = max_delay

    def fault(self, index: int, frame_length: int) -> TransportFault:
        """The deterministic fault for case ``index`` of a frame."""
        rng = random.Random(f"{self.seed}:{index}:{frame_length}")
        kind = self.kinds[rng.randrange(len(self.kinds))]
        if kind == "truncate":
            position = rng.randrange(max(1, frame_length))
            return TransportFault(index=index, kind=kind, position=position,
                                  detail=f"send {position}/{frame_length} B")
        if kind == "corrupt":
            position = rng.randrange(max(1, frame_length))
            return TransportFault(index=index, kind=kind, position=position,
                                  detail=f"flip byte {position}")
        if kind == "delay":
            delay = rng.uniform(0.0, self.max_delay)
            return TransportFault(index=index, kind=kind, delay=delay,
                                  detail=f"delay {delay * 1e3:.1f} ms")
        if kind == "garbage":
            position = rng.randrange(1, 256)
            return TransportFault(index=index, kind=kind, position=position,
                                  detail=f"{position} random bytes")
        return TransportFault(index=index, kind=kind, detail=kind)

    def plan(self, cases: int, frame_length: int) -> List[TransportFault]:
        return [self.fault(index, frame_length) for index in range(cases)]

    def apply(self, frame: bytes, fault: TransportFault) -> Optional[bytes]:
        """Bytes to actually send for ``fault`` (None = send nothing).

        ``delay`` sleeps here, modelling latency before the bytes appear.
        """
        if fault.kind == "deliver":
            return frame
        if fault.kind == "drop":
            return None
        if fault.kind == "truncate":
            return frame[:fault.position]
        if fault.kind == "corrupt":
            mutated = bytearray(frame)
            if mutated:
                mutated[fault.position % len(mutated)] ^= 0xFF
            return bytes(mutated)
        if fault.kind == "delay":
            time.sleep(fault.delay)
            return frame
        if fault.kind == "garbage":
            rng = random.Random(f"{self.seed}:{fault.index}:garbage")
            return bytes(rng.randrange(256) for _ in range(fault.position))
        raise FaultInjectionError(f"unhandled fault kind {fault.kind!r}")


@dataclass(frozen=True)
class TransportCaseOutcome:
    """Classification of one wire-fault case."""

    index: int
    kind: str
    detail: str
    outcome: str   # 'answered' | 'error-frame' | 'closed' | 'timeout'
                   # | 'unexpected'
    note: str = ""


@dataclass
class TransportSweepReport:
    """Aggregate result of one flaky-transport sweep."""

    seed: int
    cases: List[TransportCaseOutcome] = field(default_factory=list)
    #: did the server still answer a well-formed request afterwards?
    healthy_after: bool = False

    @property
    def total(self) -> int:
        return len(self.cases)

    @property
    def unexpected(self) -> List[TransportCaseOutcome]:
        return [case for case in self.cases if case.outcome == "unexpected"]

    @property
    def ok(self) -> bool:
        """No hangs/crashes escaped classification and the server lived."""
        return not self.unexpected and self.healthy_after

    def count(self, outcome: str) -> int:
        return sum(1 for case in self.cases if case.outcome == outcome)

    def format(self) -> str:
        lines = [f"transport sweep: {self.total} cases, seed {self.seed}"]
        lines.append("  answered: "
                     f"{self.count('answered')}  "
                     f"error frames: {self.count('error-frame')}  "
                     f"closed: {self.count('closed')}  "
                     f"timeouts: {self.count('timeout')}  "
                     f"unexpected: {len(self.unexpected)}")
        for case in self.unexpected:
            lines.append(f"  FINDING case {case.index} [{case.kind}] "
                         f"{case.detail}: {case.note}")
        lines.append("  server healthy after sweep: "
                     + ("yes" if self.healthy_after else "NO"))
        lines.append("result: " + ("OK" if self.ok else "findings"))
        return "\n".join(lines)


def _one_case(host: str, port: int, payload: Optional[bytes],
              transport: FlakyTransport, fault: TransportFault,
              timeout: float) -> TransportCaseOutcome:
    from ..serve import protocol  # late import: faults must not hard-depend

    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        return TransportCaseOutcome(
            index=fault.index, kind=fault.kind, detail=fault.detail,
            outcome="unexpected", note=f"connect failed: {exc}")
    try:
        wire = transport.apply(payload, fault) if payload is not None else None
        if wire:
            sock.sendall(wire)
        if fault.kind in ("drop", "truncate"):
            # The fault is on our side; the server should simply cope
            # with the half-finished exchange when we hang up.
            return TransportCaseOutcome(
                index=fault.index, kind=fault.kind, detail=fault.detail,
                outcome="closed", note="client abandoned the exchange")
        stream = sock.makefile("rb")
        try:
            response = protocol.read_frame(stream)
        except ProtocolError as exc:
            return TransportCaseOutcome(
                index=fault.index, kind=fault.kind, detail=fault.detail,
                outcome="closed", note=f"server hung up: {exc}")
        except socket.timeout:
            return TransportCaseOutcome(
                index=fault.index, kind=fault.kind, detail=fault.detail,
                outcome="timeout", note="no response before client deadline")
        if response is None:
            return TransportCaseOutcome(
                index=fault.index, kind=fault.kind, detail=fault.detail,
                outcome="closed", note="clean close, no response")
        if response.type == protocol.ERROR:
            code, message = protocol.parse_error(response.body)
            return TransportCaseOutcome(
                index=fault.index, kind=fault.kind, detail=fault.detail,
                outcome="error-frame",
                note=f"{protocol.ERROR_NAMES.get(code, code)}: {message}")
        return TransportCaseOutcome(
            index=fault.index, kind=fault.kind, detail=fault.detail,
            outcome="answered", note=response.type_name)
    except socket.timeout:
        return TransportCaseOutcome(
            index=fault.index, kind=fault.kind, detail=fault.detail,
            outcome="timeout", note="socket timeout mid-exchange")
    except (OSError, ReproError) as exc:
        return TransportCaseOutcome(
            index=fault.index, kind=fault.kind, detail=fault.detail,
            outcome="closed", note=f"{type(exc).__name__}: {exc}")
    except BaseException as exc:  # noqa: BLE001 - classification boundary
        return TransportCaseOutcome(
            index=fault.index, kind=fault.kind, detail=fault.detail,
            outcome="unexpected", note=f"{type(exc).__name__}: {exc}")
    finally:
        try:
            sock.close()
        except OSError:
            pass


def transport_sweep(host: str, port: int, frame: bytes,
                    cases: int = 100, seed: int = 0,
                    timeout: float = 2.0,
                    kinds: Sequence[str] = TRANSPORT_KINDS,
                    health_probe: Optional[Callable[[], bool]] = None
                    ) -> TransportSweepReport:
    """Throw ``cases`` seeded wire faults of ``frame`` at a live server.

    ``frame`` is a well-formed request frame (it is mutilated per case).
    After the sweep, ``health_probe`` (default: send ``frame`` intact and
    require a non-ERROR response) checks the server still serves.
    """
    if cases <= 0:
        raise FaultInjectionError(f"cases must be positive, got {cases}")
    transport = FlakyTransport(seed=seed, kinds=kinds)
    report = TransportSweepReport(seed=seed)
    for fault in transport.plan(cases, len(frame)):
        report.cases.append(
            _one_case(host, port, frame, transport, fault, timeout))
    if health_probe is None:
        def health_probe() -> bool:
            outcome = _one_case(
                host, port, frame, transport,
                TransportFault(index=-1, kind="deliver", detail="probe"),
                timeout)
            return outcome.outcome in ("answered", "error-frame")
    report.healthy_after = bool(health_probe())
    return report


__all__ = [
    "FlakyTransport",
    "TRANSPORT_KINDS",
    "TransportCaseOutcome",
    "TransportFault",
    "TransportSweepReport",
    "transport_sweep",
]
