"""Serialization of the BRISC external pattern dictionary.

The paper charges BRISC's corpus-derived dictionary (~2000 patterns,
~150 KB) against the RAM buffer and notes that "a virtual machine
implementing BRISC will have to load and decode this external dictionary".
This module makes that a measurable artifact: the dictionary serializes
to real bytes (and back), so experiments can weigh actual sizes instead
of estimates.

Layout (varints unless noted)::

    magic b"BRD1"
    register ranking: 32 bytes (register number per rank)
    pattern count
    per pattern:
        u8 length (1 or 2)
        per instruction: u8 opcode code, u8 pin count,
                         per pin: u8 field tag, svarint value
"""

from __future__ import annotations

from typing import List

from ..errors import BriscError
from ..isa import NUM_REGISTERS
from ..isa.opcodes import OP_BY_CODE, OP_TABLE
from ..lz.varint import ByteReader, ByteWriter
from .patterns import Pattern, PatternDictionary

MAGIC = b"BRD1"

_FIELD_TAGS = ("rd", "rs1", "rs2", "imm")


class BriscDictionaryError(BriscError):
    """Raised for malformed serialized dictionaries.

    A :class:`repro.errors.BriscError` (hence ``CorruptContainer`` and
    ``ValueError``), so dictionary corruption classifies like any other
    decode failure in fault sweeps.
    """


def serialize_dictionary(dictionary: PatternDictionary) -> bytes:
    """Serialize the external dictionary to bytes."""
    writer = ByteWriter()
    writer.write_bytes(MAGIC)
    ranking = sorted(dictionary.reg_ranks, key=lambda reg: dictionary.reg_ranks[reg])
    if len(ranking) != NUM_REGISTERS:
        raise BriscDictionaryError(
            f"register ranking must cover all {NUM_REGISTERS} registers")
    for reg in ranking:
        writer.write_u8(reg)
    writer.write_uvarint(len(dictionary.patterns))
    for pattern in dictionary.patterns:
        writer.write_u8(pattern.length)
        for position in range(pattern.length):
            writer.write_u8(OP_TABLE[pattern.ops[position]].code)
            pins = pattern.pins[position]
            writer.write_u8(len(pins))
            for field, value in pins:
                writer.write_u8(_FIELD_TAGS.index(field))
                writer.write_svarint(value)
    return writer.getvalue()


def deserialize_dictionary(data: bytes) -> PatternDictionary:
    """Inverse of :func:`serialize_dictionary`."""
    reader = ByteReader(data)
    if reader.read_bytes(4) != MAGIC:
        raise BriscDictionaryError("bad magic; not a BRISC dictionary")
    ranking = [reader.read_u8() for _ in range(NUM_REGISTERS)]
    if sorted(ranking) != list(range(NUM_REGISTERS)):
        raise BriscDictionaryError("register ranking is not a permutation")
    reg_ranks = {reg: rank for rank, reg in enumerate(ranking)}
    count = reader.read_uvarint()
    if count > len(data):
        raise BriscDictionaryError(f"implausible pattern count {count}")
    patterns: List[Pattern] = []
    for _ in range(count):
        length = reader.read_u8()
        if length not in (1, 2):
            raise BriscDictionaryError(f"bad pattern length {length}")
        ops = []
        pins = []
        for _ in range(length):
            code = reader.read_u8()
            meta = OP_BY_CODE.get(code)
            if meta is None:
                raise BriscDictionaryError(f"unknown opcode code {code}")
            ops.append(meta.op)
            pin_count = reader.read_u8()
            if pin_count > len(_FIELD_TAGS):
                raise BriscDictionaryError(f"bad pin count {pin_count}")
            entry_pins = []
            for _ in range(pin_count):
                tag = reader.read_u8()
                if tag >= len(_FIELD_TAGS):
                    raise BriscDictionaryError(f"unknown field tag {tag}")
                entry_pins.append((_FIELD_TAGS[tag], reader.read_svarint()))
            pins.append(tuple(sorted(entry_pins)))
        patterns.append(Pattern(ops=tuple(ops), pins=tuple(pins)))
    if not reader.at_end():
        raise BriscDictionaryError(f"{reader.remaining} trailing bytes")
    return PatternDictionary(patterns=patterns, reg_ranks=reg_ranks)


def serialized_size(dictionary: PatternDictionary) -> int:
    """Exact on-disk size of the dictionary (replaces the estimate)."""
    return len(serialize_dictionary(dictionary))
