"""BRISC pattern inference (the PLDI'97 baseline, as described in this paper).

BRISC compresses with a *corpus-derived external dictionary* of roughly
2000 instruction patterns (~150 KB) capturing "common opportunities for
combining adjacent opcodes and for specializing opcodes to reflect
frequently occurring instruction-field values".  A separate training
program builds that dictionary from representative programs; every
compressed program then shares it.

Patterns here are:

* **specialized singles** — one opcode with a subset of fields pinned to
  frequent values (``addi rd, rs1, 1`` with the immediate pinned, say);
* **combined pairs** — two adjacent opcodes (operands open), matched
  within one basic block.

Pair patterns deliberately pin no operand fields: exact-operand pairs are
program-specific idioms (SSD's whole insight), and in real corpora they
do not generalize across applications.  Our synthetic benchmarks share a
compiler and constant distributions, so allowing pinned pairs would let
BRISC free-ride on cross-program homogeneity the paper's corpus did not
have (DESIGN.md records this calibration).

Training counts candidate patterns over the corpus, scores each by the
bytes it would save (pinned fields are free at use sites; the pattern
code costs one or two bytes), and keeps the best ``budget`` patterns.
Every bare opcode is always included so any program can be encoded.  The
dictionary also carries a register popularity ranking: the codec packs
open register operands as 4-bit ranks (with an escape), BRISC's
byte-coded flavour of split-stream field handling.
"""

from __future__ import annotations

from itertools import combinations
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..isa import Instruction, NUM_REGISTERS, Op, Program, basic_blocks, info

#: default pattern-dictionary size (the paper's "approximately 2000")
DEFAULT_BUDGET = 2000

#: operand fields a pattern may pin (targets are never pinned; they travel
#: with the use site, like SSD's items)
_PINNABLE = ("rd", "rs1", "rs2", "imm")

FieldPins = Tuple[Tuple[str, int], ...]  # sorted (field, value) pairs


@dataclass(frozen=True)
class Pattern:
    """One external-dictionary pattern."""

    ops: Tuple[Op, ...]
    pins: Tuple[FieldPins, ...]  # parallel to ops

    def __post_init__(self) -> None:
        if len(self.ops) != len(self.pins):
            raise ValueError("ops and pins must be parallel")
        if not 1 <= len(self.ops) <= 2:
            raise ValueError("patterns cover one or two instructions")

    @property
    def length(self) -> int:
        return len(self.ops)

    def open_fields(self, position: int) -> List[str]:
        """Fields the use site must supply for instruction ``position``."""
        meta = info(self.ops[position])
        pinned = {field for field, _ in self.pins[position]}
        fields = []
        for reg_field in ("rd", "rs1", "rs2"):
            if getattr(meta, f"uses_{reg_field}") and reg_field not in pinned:
                fields.append(reg_field)
        if meta.uses_imm and "imm" not in pinned:
            fields.append("imm")
        if meta.uses_target:
            fields.append("target")
        return fields

    def matches(self, insns: Sequence[Instruction], start: int) -> bool:
        """Does this pattern match ``insns[start:start+length]``?"""
        if start + self.length > len(insns):
            return False
        for position in range(self.length):
            insn = insns[start + position]
            if insn.op is not self.ops[position]:
                return False
            for pin_field, value in self.pins[position]:
                if getattr(insn, pin_field) != value:
                    return False
        return True

    @property
    def specificity(self) -> int:
        return sum(len(p) for p in self.pins) + 10 * (self.length - 1)


def _pin_candidates(insn: Instruction) -> List[FieldPins]:
    """Pin sets worth counting: none, singles, pairs, and everything."""
    meta = info(insn.op)
    present = sorted(
        (f, getattr(insn, f)) for f in _PINNABLE
        if getattr(insn, f) is not None and getattr(meta, f"uses_{f}"))
    candidates: List[FieldPins] = [()]
    for pin in present:
        candidates.append((pin,))
    for a, b in combinations(present, 2):
        candidates.append((a, b))
    if len(present) > 2:
        candidates.append(tuple(present))
    return candidates


def _field_cost(field_name: str) -> float:
    """Approximate bytes an open field costs at a use site."""
    if field_name == "imm":
        return 1.6
    if field_name == "target":
        return 1.2
    return 0.5  # nibble-packed register rank


def _pattern_savings(pattern: Pattern, count: int) -> float:
    """Bytes saved across the corpus versus bare-opcode encoding."""
    pinned_bytes = sum(_field_cost(f) for pins in pattern.pins for f, _ in pins)
    combined_bonus = 1.0 * (pattern.length - 1)  # one opcode byte saved
    per_use = pinned_bytes + combined_bonus
    return per_use * count - 8.0  # 8 bytes of dictionary cost per pattern


@dataclass
class PatternDictionary:
    """The trained external dictionary.

    ``patterns[i]`` has code ``i``; codes are assigned most-used-first so
    the byte-oriented encoding gives hot patterns one-byte codes.
    ``reg_ranks`` maps register number -> popularity rank for the nibble
    packing of open register operands.
    """

    patterns: List[Pattern]
    reg_ranks: Dict[int, int] = field(default_factory=dict)
    _by_ops: Dict[Tuple[Op, ...], List[int]] = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.reg_ranks:
            self.reg_ranks = {r: r for r in range(NUM_REGISTERS)}
        self.rank_regs = [r for r, _ in sorted(self.reg_ranks.items(),
                                               key=lambda kv: kv[1])]
        self._by_ops = {}
        for code, pattern in enumerate(self.patterns):
            self._by_ops.setdefault(pattern.ops, []).append(code)
        for codes in self._by_ops.values():
            codes.sort(key=lambda c: -self.patterns[c].specificity)

    def __len__(self) -> int:
        return len(self.patterns)

    def candidates(self, ops: Tuple[Op, ...]) -> List[int]:
        return self._by_ops.get(ops, [])

    def match(self, insns: Sequence[Instruction], start: int,
              block_end: int) -> Optional[int]:
        """Best (longest, most specific) pattern code at ``start``."""
        if start + 1 < block_end:
            pair = (insns[start].op, insns[start + 1].op)
            for code in self.candidates(pair):
                if self.patterns[code].matches(insns, start):
                    return code
        for code in self.candidates((insns[start].op,)):
            if self.patterns[code].matches(insns, start):
                return code
        return None

    def size_bytes(self) -> int:
        """Approximate serialized size of the external dictionary."""
        total = NUM_REGISTERS  # the register ranking
        for pattern in self.patterns:
            total += 2 + 2 * len(pattern.ops)
            total += sum(2 + 4 for pins in pattern.pins for _ in pins)
        return total


def train(corpus: Iterable[Program], budget: int = DEFAULT_BUDGET) -> PatternDictionary:
    """Build the external dictionary from a training corpus."""
    single_counts: Dict[Tuple[Op, FieldPins], int] = {}
    pair_counts: Dict[Tuple[Op, FieldPins, Op, FieldPins], int] = {}
    bare_counts: Dict[Op, int] = {}
    reg_counts: Dict[int, int] = {r: 0 for r in range(NUM_REGISTERS)}

    for program in corpus:
        for fn in program.functions:
            insns = fn.insns
            ends = [0] * len(insns)
            for block in basic_blocks(fn):
                for index in range(block.start, block.end):
                    ends[index] = block.end
            for index, insn in enumerate(insns):
                bare_counts[insn.op] = bare_counts.get(insn.op, 0) + 1
                meta = info(insn.op)
                for reg_field in ("rd", "rs1", "rs2"):
                    if getattr(meta, f"uses_{reg_field}"):
                        reg_counts[getattr(insn, reg_field)] += 1
                for pins in _pin_candidates(insn):
                    if pins:
                        key = (insn.op, pins)
                        single_counts[key] = single_counts.get(key, 0) + 1
                if index + 1 < ends[index]:
                    key = (insn.op, (), insns[index + 1].op, ())
                    pair_counts[key] = pair_counts.get(key, 0) + 1

    scored: List[Tuple[float, int, Pattern]] = []
    for (op, pins), count in single_counts.items():
        pattern = Pattern(ops=(op,), pins=(pins,))
        savings = _pattern_savings(pattern, count)
        if savings > 0:
            scored.append((savings, count, pattern))
    for (op1, p1, op2, p2), count in pair_counts.items():
        pattern = Pattern(ops=(op1, op2), pins=(p1, p2))
        savings = _pattern_savings(pattern, count)
        if savings > 0:
            scored.append((savings, count, pattern))

    scored.sort(key=lambda item: (-item[0], repr(item[2])))
    # Bare single-opcode patterns are mandatory so coverage is total.
    mandatory = [(bare_counts.get(op, 0), Pattern(ops=(op,), pins=((),)))
                 for op in Op]
    chosen: List[Tuple[int, Pattern]] = list(mandatory)
    seen = {pattern for _, pattern in chosen}
    for savings, count, pattern in scored:
        if len(chosen) >= budget:
            break
        if pattern not in seen:
            chosen.append((count, pattern))
            seen.add(pattern)
    # Most-used first so one-byte codes go to hot patterns.
    chosen.sort(key=lambda item: (-item[0], repr(item[1])))
    ranks = {reg: rank for rank, (reg, _) in enumerate(
        sorted(reg_counts.items(), key=lambda kv: (-kv[1], kv[0])))}
    return PatternDictionary(patterns=[pattern for _, pattern in chosen],
                             reg_ranks=ranks)
