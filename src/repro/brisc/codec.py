"""BRISC compressor and decompressor.

Byte-oriented encoding against the trained external dictionary:

* pattern codes 0..239 take one byte; codes 240..4079 take two bytes
  (``0xF0 | hi``, ``lo``); ``0xFF`` escapes to a raw instruction (full VM
  encoding);
* each matched pattern is followed by its open fields.  Open *register*
  fields are nibble-packed popularity ranks (rank 15 escapes to a full
  byte) — BRISC's byte-coded take on split-stream fields; immediates are
  signed varints; branch targets are signed varints of the pc-relative
  displacement (calls: unsigned callee index).

Programs are encoded per function (BRISC is interpretable: functions
decode independently), with a varint instruction count up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import BriscError
from ..isa import Function, Instruction, Program, basic_blocks, info
from ..isa.encoding import decode_instruction, encode_instruction
from ..lz.varint import ByteReader, ByteWriter
from .patterns import Pattern, PatternDictionary

_ONE_BYTE_CODES = 240
_TWO_BYTE_PREFIX = 0xF0
_ESCAPE = 0xFF
_RANK_ESCAPE = 15

# ``BriscError`` now lives in :mod:`repro.errors` (it subclasses
# ``CorruptContainer``, which is still a ``ValueError``, so historical
# ``except ValueError`` callers keep working); re-exported here because
# this module has always been its import site.
__all__ = ["BriscError", "BriscCompressed", "compress", "compress_function",
           "decompress", "decompress_function"]


def _write_code(writer: ByteWriter, code: int) -> None:
    if code < _ONE_BYTE_CODES:
        writer.write_u8(code)
        return
    extended = code - _ONE_BYTE_CODES
    hi, lo = divmod(extended, 256)
    if hi >= 15:
        raise BriscError(f"pattern code {code} exceeds the code space")
    writer.write_u8(_TWO_BYTE_PREFIX | hi)
    writer.write_u8(lo)


def _read_code(reader: ByteReader) -> int:
    byte = reader.read_u8()
    if byte < _ONE_BYTE_CODES:
        return byte
    if byte == _ESCAPE:
        return -1  # escape marker
    return _ONE_BYTE_CODES + (byte & 0x0F) * 256 + reader.read_u8()


def _split_open_fields(pattern: Pattern,
                       ) -> Tuple[List[Tuple[int, str]], List[Tuple[int, str]]]:
    """Open fields, separated into (register fields, other fields)."""
    regs: List[Tuple[int, str]] = []
    others: List[Tuple[int, str]] = []
    for position in range(pattern.length):
        for field_name in pattern.open_fields(position):
            if field_name in ("rd", "rs1", "rs2"):
                regs.append((position, field_name))
            else:
                others.append((position, field_name))
    return regs, others


def _write_use(writer: ByteWriter, pattern: Pattern,
               insns: List[Instruction], start: int,
               dictionary: PatternDictionary) -> None:
    regs, others = _split_open_fields(pattern)
    # Nibble-packed register ranks, escapes appended as full bytes.
    nibbles: List[int] = []
    escapes: List[int] = []
    for position, field_name in regs:
        reg = getattr(insns[start + position], field_name)
        rank = dictionary.reg_ranks[reg]
        if rank < _RANK_ESCAPE:
            nibbles.append(rank)
        else:
            nibbles.append(_RANK_ESCAPE)
            escapes.append(reg)
    for index in range(0, len(nibbles), 2):
        lo = nibbles[index]
        hi = nibbles[index + 1] if index + 1 < len(nibbles) else 0
        writer.write_u8(lo | (hi << 4))
    for reg in escapes:
        writer.write_u8(reg)
    for position, field_name in others:
        insn = insns[start + position]
        if field_name == "target":
            if insn.is_branch:
                writer.write_svarint(insn.target - (start + position + 1))
            else:
                writer.write_uvarint(insn.target)
        else:  # imm
            writer.write_svarint(insn.imm)


def _read_use(reader: ByteReader, pattern: Pattern, emitted: int,
              dictionary: PatternDictionary) -> List[Instruction]:
    regs, others = _split_open_fields(pattern)
    nibbles: List[int] = []
    for index in range(0, len(regs), 2):
        byte = reader.read_u8()
        nibbles.append(byte & 0x0F)
        if index + 1 < len(regs):
            nibbles.append(byte >> 4)
    reg_values: Dict[Tuple[int, str], int] = {}
    pending_escapes: List[Tuple[int, str]] = []
    for (position, field_name), nibble in zip(regs, nibbles):
        if nibble == _RANK_ESCAPE:
            pending_escapes.append((position, field_name))
        else:
            reg_values[(position, field_name)] = dictionary.rank_regs[nibble]
    for position, field_name in pending_escapes:
        reg_values[(position, field_name)] = reader.read_u8()
    other_values: Dict[Tuple[int, str], int] = {}
    for position, field_name in others:
        meta = info(pattern.ops[position])
        if field_name == "target":
            if meta.is_branch:
                displacement = reader.read_svarint()
                other_values[(position, field_name)] = (
                    emitted + position + 1 + displacement)
            else:
                other_values[(position, field_name)] = reader.read_uvarint()
        else:
            other_values[(position, field_name)] = reader.read_svarint()
    instructions: List[Instruction] = []
    for position in range(pattern.length):
        fields: Dict[str, int] = dict(pattern.pins[position])
        for (pos, field_name), value in reg_values.items():
            if pos == position:
                fields[field_name] = value
        for (pos, field_name), value in other_values.items():
            if pos == position:
                fields[field_name] = value
        instructions.append(Instruction(op=pattern.ops[position], **fields))
    return instructions


def compress_function(fn: Function, dictionary: PatternDictionary) -> bytes:
    writer = ByteWriter()
    insns = fn.insns
    writer.write_uvarint(len(insns))
    ends = [0] * len(insns)
    for block in basic_blocks(fn):
        for index in range(block.start, block.end):
            ends[index] = block.end
    index = 0
    while index < len(insns):
        code = dictionary.match(insns, index, ends[index])
        if code is None:
            writer.write_u8(_ESCAPE)
            encode_instruction(insns[index], index, writer)
            index += 1
            continue
        pattern = dictionary.patterns[code]
        _write_code(writer, code)
        _write_use(writer, pattern, insns, index, dictionary)
        index += pattern.length
    return writer.getvalue()


def decompress_function(data: bytes, name: str,
                        dictionary: PatternDictionary) -> Function:
    reader = ByteReader(data)
    count = reader.read_uvarint()
    insns: List[Instruction] = []
    while len(insns) < count:
        code = _read_code(reader)
        if code == -1:
            insns.append(decode_instruction(reader, len(insns)))
            continue
        if code >= len(dictionary.patterns):
            raise BriscError(f"pattern code {code} not in dictionary")
        pattern = dictionary.patterns[code]
        insns.extend(_read_use(reader, pattern, len(insns), dictionary))
    if len(insns) != count:
        raise BriscError(f"expected {count} instructions, decoded {len(insns)}")
    return Function(name=name, insns=insns)


@dataclass
class BriscCompressed:
    """A BRISC-compressed program (external dictionary not included)."""

    program_name: str
    entry: int
    function_names: List[str]
    function_blobs: List[bytes]

    @property
    def size(self) -> int:
        """Compressed code bytes (the external dictionary is shared
        infrastructure, amortized across all programs — as in the paper)."""
        return sum(len(blob) for blob in self.function_blobs)


def compress(program: Program, dictionary: PatternDictionary) -> BriscCompressed:
    """BRISC-compress ``program`` against the external ``dictionary``."""
    return BriscCompressed(
        program_name=program.name,
        entry=program.entry,
        function_names=[fn.name for fn in program.functions],
        function_blobs=[compress_function(fn, dictionary)
                        for fn in program.functions],
    )


def decompress(compressed: BriscCompressed,
               dictionary: PatternDictionary) -> Program:
    """Inverse of :func:`compress` (same dictionary required)."""
    functions = [
        decompress_function(blob, name, dictionary)
        for name, blob in zip(compressed.function_names,
                              compressed.function_blobs)
    ]
    return Program(name=compressed.program_name, functions=functions,
                   entry=compressed.entry)
