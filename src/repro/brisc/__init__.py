"""BRISC — the paper's prior system, rebuilt as the comparison baseline.

BRISC (PLDI'97) compresses against a *corpus-trained external* pattern
dictionary instead of SSD's embedded per-program dictionary.  That makes
it cheaper for tiny programs (no embedded dictionary to amortize) but
weaker on large ones, and its translation path must decode patterns
rather than block-copy — both effects the evaluation reproduces.
"""

from .codec import (
    BriscCompressed,
    BriscError,
    compress,
    compress_function,
    decompress,
    decompress_function,
)
from .patterns import DEFAULT_BUDGET, Pattern, PatternDictionary, train
from .serialize import (
    BriscDictionaryError,
    deserialize_dictionary,
    serialize_dictionary,
    serialized_size,
)

__all__ = [
    "BriscCompressed",
    "BriscDictionaryError",
    "BriscError",
    "DEFAULT_BUDGET",
    "Pattern",
    "PatternDictionary",
    "compress",
    "compress_function",
    "decompress",
    "decompress_function",
    "deserialize_dictionary",
    "serialize_dictionary",
    "serialized_size",
    "train",
]
