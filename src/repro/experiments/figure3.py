"""Experiment figure3 — RAM-constrained word97 performance, BRISC vs SSD.

Regenerates the paper's Figure 3: execution-time overhead (vs the
unconstrained native run) as a function of buffer size, for both SSD and
BRISC.  Both schemes replay the same call trace; each is charged its own
dictionary (SSD: the program's compressed dictionary; BRISC: the ~150 KB
external pattern dictionary) and its own translation costs (SSD's cheap
copy phase vs BRISC's decode-everything path).

Expected shape: both flat and low above the ~0.3 knee; below it BRISC's
overhead explodes several times faster than SSD's — the paper's
"graceful degradation" headline.  The paper's companion claims are also
checked: ~27% overhead for SSD at a one-third-sized buffer, and a
~14.1% floor from the regeneration infrastructure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis import ascii_chart, render_table
from ..jit import BRISC_COSTS, BRISC_EXTERNAL_DICT_BYTES, SSD_COSTS, sweep_buffer_sizes
from .common import ExperimentContext
from .table6 import RATIOS, word97_trace

#: extra sweep point for the "one-third buffer" claim
THIRD = 1.0 / 3.0


def sweep_both(context: ExperimentContext, name: str = "word97",
               ratios: Sequence[float] = None) -> Dict[str, List]:
    ratios = list(ratios) if ratios is not None else sorted(set(RATIOS + [THIRD]))
    sizes = context.jit_function_sizes(name)
    trace = word97_trace(context, name)
    x86 = context.x86_size(name)
    ssd_points = sweep_buffer_sizes(
        function_sizes=sizes, trace=trace, x86_size=x86, ratios=ratios,
        dictionary_bytes=context.ssd_dictionary_bytes(name),
        costs=SSD_COSTS, items_per_function=context.item_counts(name))
    # BRISC's external dictionary was ~150 KB against word97's 5.17 MB in
    # the paper (2.9% of the program); charge the same proportion here so
    # scaled-down runs keep the paper's accounting.
    brisc_dict = int(x86 * BRISC_EXTERNAL_DICT_BYTES / 5_175_500)
    brisc_points = sweep_buffer_sizes(
        function_sizes=sizes, trace=trace, x86_size=x86, ratios=ratios,
        dictionary_bytes=brisc_dict,
        costs=BRISC_COSTS)
    return {"ratios": ratios, "ssd": ssd_points, "brisc": brisc_points}


def run(context: ExperimentContext, name: str = "word97") -> str:
    data = sweep_both(context, name)
    rows = []
    for ratio, ssd_point, brisc_point in zip(data["ratios"], data["ssd"],
                                             data["brisc"]):
        rows.append([ratio, ssd_point.overhead_pct, brisc_point.overhead_pct,
                     brisc_point.overhead_pct / max(ssd_point.overhead_pct, 1e-9)])
    table = render_table(
        ["buffer/x86", "SSD ovh%", "BRISC ovh%", "BRISC/SSD"],
        rows,
        title=(f"Figure 3 — RAM-constrained {name} performance "
               f"(scale={context.scale}; paper shows BRISC rising toward "
               f"~500-600% at 0.2 while SSD degrades gracefully; SSD at a "
               f"one-third buffer ran at ~27% overhead)"),
        precision=1)
    chart = ascii_chart(
        {"ssd": [p.overhead_pct for p in data["ssd"]],
         "brisc": [p.overhead_pct for p in data["brisc"]]},
        x_values=data["ratios"],
        title="overhead %% vs buffer ratio")
    return table + "\n\n" + chart + "\n"


def main(scale: float = 0.25) -> None:  # pragma: no cover - CLI glue
    print(run(ExperimentContext(scale=scale)))


if __name__ == "__main__":  # pragma: no cover
    main()
