"""Experiment table6 — JIT-translation buffer behaviour for word97.

Regenerates the paper's Table 6: megabytes JIT-translated (including
re-translation) and buffer hit rate as the buffer shrinks from 0.5 to 0.2
of the optimized native program size, with the SSD dictionary charged
against the buffer.  Expected shape: a knee between 0.25 and 0.3, hit
rates above 99.8% from 0.3 up, and translated volume exploding to tens of
program-sizes at 0.2.

The paper drove Word97 through an interactive suite (auto-format,
auto-summarize, grammar check); we drive the synthetic word97 with a
three-phase Zipf call trace with a shared hot core (see
``repro.workloads.traces`` for the substitution argument).
"""

from __future__ import annotations

from typing import List, Sequence

from ..analysis import render_table
from ..jit import SSD_COSTS, SweepPoint, sweep_buffer_sizes
from ..workloads import PAPER_TABLE6, TraceSpec, generate_trace
from .common import ExperimentContext

#: Table 6's buffer ratios.
RATIOS = [0.2, 0.25, 0.275, 0.3, 0.325, 0.35, 0.4, 0.45, 0.5]

#: calls issued per phase, per program function (controls how much
#: re-translation a cold working set can accumulate)
CALLS_PER_FUNCTION = 18
#: interactive feature invocations (auto-format, grammar check, ...) —
#: each shifts the working set and forces re-translation churn
PHASES = 8


def word97_trace(context: ExperimentContext, name: str = "word97") -> List[int]:
    """The phased call trace used by Table 6 and Figure 3.

    Skew and core-set parameters were calibrated so the hit-rate column of
    Table 6 matches the paper's shape: ~90% at a 0.2 buffer, a knee near
    0.25-0.3, and >99% above it (interactive applications really are this
    hot-set-dominated; see EXPERIMENTS.md).
    """
    sizes = context.jit_function_sizes(name)
    spec = TraceSpec(
        function_count=len(sizes),
        calls_per_phase=CALLS_PER_FUNCTION * len(sizes),
        phases=PHASES,
        skew=2.0,
        core_fraction=0.5,
        core_size_fraction=0.015,
        seed=9700,
    )
    return generate_trace(spec)


def sweep(context: ExperimentContext, name: str = "word97",
          ratios: Sequence[float] = tuple(RATIOS)) -> List[SweepPoint]:
    sizes = context.jit_function_sizes(name)
    trace = word97_trace(context, name)
    return sweep_buffer_sizes(
        function_sizes=sizes,
        trace=trace,
        x86_size=context.x86_size(name),
        ratios=list(ratios),
        dictionary_bytes=context.ssd_dictionary_bytes(name),
        costs=SSD_COSTS,
        items_per_function=context.item_counts(name),
    )


def run(context: ExperimentContext, name: str = "word97") -> str:
    points = sweep(context, name)
    program_mb = context.x86_size(name) / 1e6
    rows = []
    for (ratio, paper_mb, paper_hit), point in zip(PAPER_TABLE6, points):
        rows.append([
            ratio,
            paper_mb,
            point.megabytes_translated,
            paper_mb / 5.1755,                      # paper, in program-sizes
            point.megabytes_translated / program_mb,  # ours, in program-sizes
            paper_hit,
            point.hit_rate_pct,
        ])
    headers = ["buffer/x86", "MB(paper)", "MB(ours)",
               "xprog(paper)", "xprog(ours)", "hit%(paper)", "hit%(ours)"]
    title = (f"Table 6 — megabytes JIT-translated and buffer hit rate vs "
             f"buffer size, {name} (scale={context.scale}; absolute MB scale "
             f"with program size — compare the 'xprog' columns)")
    return render_table(headers, rows, title=title, precision=2) + "\n"


def main(scale: float = 0.25) -> None:  # pragma: no cover - CLI glue
    print(run(ExperimentContext(scale=scale)))


if __name__ == "__main__":  # pragma: no cover
    main()
