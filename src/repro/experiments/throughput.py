"""Experiment throughput — decompression and translation rates.

The paper's headline speeds (7.8 MB/s dictionary-phase decompression,
12.5 MB/s copy-phase translation on a 450 MHz Pentium II, SSD >= 1.5x
BRISC's rate) are hardware-bound claims; this reproduction reports two
things instead:

* **measured** wall-clock throughput of this Python implementation (the
  absolute numbers are Python-speed, not Pentium-speed);
* **modelled** throughput from the cycle model, which reproduces the
  paper's *relationships*: copy phase faster than dictionary phase, and
  SSD's translation rate well above BRISC's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..analysis import render_table
from ..brisc import decompress as brisc_decompress
from ..core import decompress as ssd_decompress
from ..core import open_container
from ..jit import BRISC_COSTS, SSD_COSTS, Translator, build_tables, mb_per_second
from ..workloads import (
    PAPER_BRISC_TRANSLATE_MBPS,
    PAPER_SSD_COPY_PHASE_MBPS,
    PAPER_SSD_DICT_PHASE_MBPS,
)
from .common import ExperimentContext


@dataclass
class ThroughputReport:
    measured_dict_mbps: float
    measured_copy_mbps: float
    measured_full_decompress_mbps: float
    measured_brisc_mbps: float
    modelled_copy_mbps: float
    modelled_brisc_mbps: float


def measure(context: ExperimentContext, name: str = "gcc") -> ThroughputReport:
    data = context.ssd(name).data
    reader = open_container(data)

    start = time.perf_counter()
    tables = build_tables(reader)
    dict_seconds = time.perf_counter() - start
    table_bytes = tables.total_bytes

    translator = Translator(reader, tables)
    start = time.perf_counter()
    produced = sum(translator.translate_function(findex).size
                   for findex in range(reader.function_count))
    copy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    program = ssd_decompress(data)
    full_seconds = time.perf_counter() - start
    vm_bytes = context.x86_size(name)

    brisc_compressed = context.brisc(name)
    dictionary = context.brisc_dictionary(exclude=name)
    start = time.perf_counter()
    brisc_decompress(brisc_compressed, dictionary)
    brisc_seconds = time.perf_counter() - start

    items = sum(context.item_counts(name))
    modelled_copy_cycles = SSD_COSTS.translate_cycles(produced, items)
    modelled_brisc_cycles = BRISC_COSTS.translate_cycles(produced)
    return ThroughputReport(
        measured_dict_mbps=table_bytes / 1e6 / dict_seconds,
        measured_copy_mbps=produced / 1e6 / copy_seconds,
        measured_full_decompress_mbps=vm_bytes / 1e6 / full_seconds,
        measured_brisc_mbps=produced / 1e6 / brisc_seconds,
        modelled_copy_mbps=mb_per_second(produced, modelled_copy_cycles),
        modelled_brisc_mbps=mb_per_second(produced, modelled_brisc_cycles),
    )


def run(context: ExperimentContext, name: str = "gcc") -> str:
    report = measure(context, name)
    rows = [
        ["dictionary phase (MB/s)", PAPER_SSD_DICT_PHASE_MBPS, report.measured_dict_mbps, None],
        ["copy phase (MB/s)", PAPER_SSD_COPY_PHASE_MBPS, report.measured_copy_mbps,
         report.modelled_copy_mbps],
        ["BRISC translate (MB/s)", PAPER_BRISC_TRANSLATE_MBPS, report.measured_brisc_mbps,
         report.modelled_brisc_mbps],
        ["copy / BRISC speedup", PAPER_SSD_COPY_PHASE_MBPS / PAPER_BRISC_TRANSLATE_MBPS,
         report.measured_copy_mbps / report.measured_brisc_mbps,
         report.modelled_copy_mbps / report.modelled_brisc_mbps],
    ]
    title = (f"Throughput ({name}, scale={context.scale}) — measured column is "
             f"this Python implementation on this machine; modelled column is "
             f"the cycle model at 450 MHz; paper column is the Pentium II")
    return render_table(["quantity", "paper", "measured", "modelled"], rows,
                        title=title, precision=2) + "\n"


def main(scale: float = 0.25) -> None:  # pragma: no cover - CLI glue
    print(run(ExperimentContext(scale=scale)))


if __name__ == "__main__":  # pragma: no cover
    main()
