"""Shared experiment plumbing: artifact construction with caching.

Experiments share expensive artifacts — synthesized benchmark programs,
SSD containers, BRISC dictionaries, interpreter profiles — so this module
memoizes them per (name, scale) inside one :class:`ExperimentContext`.

``scale`` scales every benchmark's instruction-count target (1.0 = the
paper's sizes; the default 0.25 keeps a full experiment run to a few
minutes).  EXPERIMENTS.md records which scale produced the published
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..brisc import BriscCompressed, PatternDictionary
from ..brisc import compress as brisc_compress
from ..brisc import train as brisc_train
from ..core import CompressedProgram, SSDReader, compress, open_container
from ..isa import Program
from ..vm import ExecutionResult, function_native_sizes, native_size, run_program
from ..workloads import PROFILES, benchmark_program

ALL_BENCHMARKS = [p.name for p in PROFILES]


@dataclass
class ExperimentContext:
    """Caches every expensive artifact for one experiment session."""

    scale: float = 0.25
    train_scale: float = 0.1
    fuel: int = 10_000_000
    _programs: Dict[str, Program] = field(default_factory=dict)
    _x86: Dict[str, int] = field(default_factory=dict)
    _compressed: Dict[str, CompressedProgram] = field(default_factory=dict)
    _readers: Dict[str, SSDReader] = field(default_factory=dict)
    _brisc_dicts: Dict[Optional[str], PatternDictionary] = field(default_factory=dict)
    _brisc: Dict[str, BriscCompressed] = field(default_factory=dict)
    _runs: Dict[str, ExecutionResult] = field(default_factory=dict)
    _jit_sizes: Dict[str, List[int]] = field(default_factory=dict)

    def program(self, name: str) -> Program:
        if name not in self._programs:
            self._programs[name] = benchmark_program(name, scale=self.scale)
        return self._programs[name]

    def x86_size(self, name: str) -> int:
        if name not in self._x86:
            self._x86[name] = native_size(self.program(name))
        return self._x86[name]

    def ssd(self, name: str) -> CompressedProgram:
        if name not in self._compressed:
            self._compressed[name] = compress(self.program(name))
        return self._compressed[name]

    def reader(self, name: str) -> SSDReader:
        if name not in self._readers:
            self._readers[name] = open_container(self.ssd(name).data)
        return self._readers[name]

    def brisc_dictionary(self, exclude: Optional[str] = None) -> PatternDictionary:
        """Leave-one-out trained external dictionary."""
        if exclude not in self._brisc_dicts:
            corpus = [benchmark_program(name, scale=self.train_scale)
                      for name in ALL_BENCHMARKS if name != exclude]
            self._brisc_dicts[exclude] = brisc_train(corpus)
        return self._brisc_dicts[exclude]

    def brisc(self, name: str) -> BriscCompressed:
        if name not in self._brisc:
            self._brisc[name] = brisc_compress(self.program(name),
                                               self.brisc_dictionary(exclude=name))
        return self._brisc[name]

    def run(self, name: str) -> ExecutionResult:
        if name not in self._runs:
            self._runs[name] = run_program(self.program(name), fuel=self.fuel)
        return self._runs[name]

    def jit_function_sizes(self, name: str) -> List[int]:
        """Per-function JIT-produced native sizes (unoptimized lowering)."""
        if name not in self._jit_sizes:
            self._jit_sizes[name] = function_native_sizes(self.program(name),
                                                          optimize=False)
        return self._jit_sizes[name]

    def ssd_dictionary_bytes(self, name: str) -> int:
        """Compressed SSD dictionary size (the buffer experiments' charge)."""
        sections = self.ssd(name).section_sizes
        return (sections["common_bases"] + sections["common_tree"]
                + sections["segment_bases"] + sections["segment_trees"])

    def item_counts(self, name: str) -> List[int]:
        """SSD items per function (for copy-phase cost accounting)."""
        reader = self.reader(name)
        return [len(reader.decoded_items(findex))
                for findex in range(reader.function_count)]
