"""Ablation experiments for SSD's design choices.

Each ablation isolates one decision DESIGN.md calls out:

* **branch targets** — pc-relative targets in the item stream (SSD) vs
  absolute targets inside dictionary entries.  The paper measured the
  pc-relative choice ~6.2% smaller (section 2.1).
* **base-entry codec** — plain LZ over concatenated sorted groups vs delta
  coding the sorted field.  The paper found LZ "simpler and yielded
  better compression" (section 2.2.1).
* **max sequence length** — the paper fixes 4; sweep 1..6.
* **matching** — the paper's greedy longest-match vs an item-optimal
  dynamic program (expected tie: the occurrence oracle is factor-closed).
* **hybrid re-optimization** — copy-phase-only JIT vs section 2.2.4's
  post-translation optimization, across session lengths.
* **buffer replacement policy** — the paper's permanent + round-robin
  hybrid vs pure round-robin and pure LRU, on the word97 trace.
* **compression landscape** — interpretable (SSD/BRISC) vs archival
  (LZ77, arithmetic coding) on the same inputs (section 2's taxonomy).
"""

from __future__ import annotations

from typing import Sequence

from ..analysis import render_table
from ..core import compress
from ..jit import (
    PureLRUBuffer,
    PureRoundRobinBuffer,
    SSD_COSTS,
    TranslationBuffer,
    sweep_buffer_sizes,
)
from .common import ExperimentContext
from .table6 import word97_trace


def branch_target_ablation(context: ExperimentContext,
                           names: Sequence[str] = ("gcc", "vortex", "go", "xlisp"),
                           ) -> str:
    rows = []
    gains = []
    for name in names:
        program = context.program(name)
        relative = context.ssd(name).size
        absolute = compress(program, branch_targets="absolute").size
        gain = 100.0 * (absolute - relative) / absolute
        gains.append(gain)
        rows.append([name, absolute, relative, gain])
    rows.append(["average", None, None, sum(gains) / len(gains)])
    return render_table(
        ["program", "absolute B", "relative B", "relative wins by %"],
        rows,
        title=("Ablation: branch targets in items (SSD) vs in dictionary "
               "entries — paper reports the item-stream choice ~6.2% smaller"),
        precision=1) + "\n"


def base_codec_ablation(context: ExperimentContext,
                        names: Sequence[str] = ("gcc", "vortex", "go", "xlisp"),
                        ) -> str:
    rows = []
    for name in names:
        program = context.program(name)
        lz_size = context.ssd(name).size
        delta_size = compress(program, codec="delta").size
        both_size = compress(program, codec="delta+lz").size
        rows.append([name, delta_size, lz_size, both_size,
                     100.0 * (delta_size - lz_size) / delta_size,
                     100.0 * (lz_size - both_size) / lz_size])
    return render_table(
        ["program", "delta B", "lz B", "delta+lz B", "lz vs delta %",
         "delta+lz vs lz %"],
        rows,
        title=("Ablation: base-entry codec — the paper found LZ better than "
               "delta coding (reproduced); combining them (this repro's "
               "extension) does better still"),
        precision=1) + "\n"


def sequence_length_ablation(context: ExperimentContext, name: str = "go",
                             lengths: Sequence[int] = (1, 2, 3, 4, 5, 6)) -> str:
    program = context.program(name)
    x86 = context.x86_size(name)
    rows = []
    for max_len in lengths:
        size = compress(program, max_len=max_len).size
        rows.append([max_len, size, size / x86])
    return render_table(
        ["max seq len", "bytes", "ratio"],
        rows,
        title=(f"Ablation: maximum sequence-entry length ({name}) — the paper "
               f"fixes 4; gains should flatten past it"),
        precision=3) + "\n"


def buffer_policy_ablation(context: ExperimentContext, name: str = "word97",
                           ratios: Sequence[float] = (0.2, 0.25, 0.3, 0.4),
                           ) -> str:
    sizes = context.jit_function_sizes(name)
    trace = word97_trace(context, name)
    x86 = context.x86_size(name)
    dictionary = context.ssd_dictionary_bytes(name)
    policies = [("paper hybrid", TranslationBuffer),
                ("pure round-robin", PureRoundRobinBuffer),
                ("pure LRU", PureLRUBuffer)]
    rows = []
    for label, buffer_class in policies:
        points = sweep_buffer_sizes(sizes, trace, x86, list(ratios),
                                    dictionary_bytes=dictionary,
                                    costs=SSD_COSTS,
                                    buffer_class=buffer_class,
                                    items_per_function=context.item_counts(name))
        for point in points:
            rows.append([label, point.buffer_ratio, point.hit_rate_pct,
                         point.megabytes_translated, point.overhead_pct])
    return render_table(
        ["policy", "buffer/x86", "hit %", "MB translated", "overhead %"],
        rows,
        title=(f"Ablation: buffer replacement policy ({name}) — the paper's "
               f"permanent+round-robin hybrid should dominate pure round-robin"),
        precision=2) + "\n"


def matching_ablation(context: ExperimentContext,
                      names: Sequence[str] = ("go", "xlisp"),
                      ) -> str:
    """Greedy (Algorithm 1) vs item-byte-optimal dynamic programming.

    The paper notes its matcher is greedy and "ignores the possibility of
    finding a longer match beginning at one of the other instructions in
    the matched prefix"; this measures how much that simplicity costs.
    """
    rows = []
    for name in names:
        program = context.program(name)
        greedy = context.ssd(name).size
        optimal = compress(program, match_mode="optimal").size
        rows.append([name, greedy, optimal,
                     100.0 * (greedy - optimal) / greedy])
    return render_table(
        ["program", "greedy B", "optimal B", "optimal wins by %"],
        rows,
        title=("Ablation: greedy vs optimal matching — expected result: a "
               "tie.  The >=2-occurrence oracle is factor-closed (every "
               "sub-window of a repeated window is repeated), and for "
               "factor-closed dictionaries longest-match greedy is already "
               "optimal; the paper's simplicity costs nothing"),
        precision=2) + "\n"


def hybrid_ablation(context: ExperimentContext,
                    names: Sequence[str] = ("go", "xlisp"),
                    sessions: Sequence[float] = (0.1, 1.0, 60.0)) -> str:
    """Plain copy-phase JIT vs section 2.2.4's hybrid re-optimization.

    Hybrid pays heavy per-byte optimization once to erase the code-quality
    gap; it should lose on short sessions and win on long ones.
    """
    from ..analysis import measure_overhead

    rows = []
    for name in names:
        program = context.program(name)
        for session in sessions:
            plain = measure_overhead(program, result=context.run(name),
                                     compressed_data=context.ssd(name).data,
                                     session_seconds=session)
            hybrid = measure_overhead(program, result=context.run(name),
                                      compressed_data=context.ssd(name).data,
                                      session_seconds=session, hybrid=True)
            rows.append([name, session, plain.total_overhead_pct,
                         hybrid.total_overhead_pct,
                         "hybrid" if hybrid.total_overhead_pct
                         < plain.total_overhead_pct else "plain"])
    return render_table(
        ["program", "session s", "jit-only ovh%", "hybrid ovh%", "winner"],
        rows,
        title=("Ablation: copy-phase JIT vs hybrid re-optimization "
               "(section 2.2.4) — hybrid recovers code quality at a "
               "translation cost that only pays off on long sessions"),
        precision=2) + "\n"


def compression_landscape(context: ExperimentContext,
                          names: Sequence[str] = ("go", "xlisp"),
                          ) -> str:
    """Interpretable vs archival compressors on the same programs.

    Section 2's taxonomy: SSD and BRISC are interpretable (random access
    at basic-block granularity); byte-oriented LZ and arithmetic coding
    are stream-oriented and archival-only.  The archival coders should
    compress *better* — the paper's point is that SSD gets close while
    remaining interpretable.
    """
    from ..analysis import measure_sizes
    from ..core import parse
    from ..lz import lz77

    rows = []
    for name in names:
        report = measure_sizes(context.program(name),
                               brisc_dictionary=context.brisc_dictionary(exclude=name),
                               x86_bytes=context.x86_size(name),
                               include_archival=True)
        # What would SSD cost if it gave up random access and LZ-packed
        # its item streams?  (The price of interpretability, inside SSD.)
        sections = parse(context.ssd(name).data)
        packed_items = len(lz77.compress(b"".join(sections.item_streams)))
        ssd_packed = (report.ssd_bytes - report.ssd_item_bytes + packed_items)
        rows.append([name, report.vm_ratio, report.ssd_ratio,
                     ssd_packed / report.x86_bytes,
                     report.brisc_ratio, report.lz_ratio, report.arith_ratio])
    return render_table(
        ["program", "vm/x86", "ssd/x86", "ssd+lzitems/x86", "brisc/x86",
         "lz/x86", "arith/x86"],
        rows,
        title=("Compression landscape — interpretable (ssd, brisc) vs "
               "archival stream compressors (lz77, arithmetic over VM "
               "bytecode); 'ssd+lzitems' LZ-packs the item streams, "
               "showing what SSD's random-access property costs"),
        precision=3) + "\n"


def trace_source_validation(context: ExperimentContext, name: str = "word97",
                            ratios: Sequence[float] = (0.3, 0.5, 0.8),
                            ) -> str:
    """Synthetic trace vs the interpreter's real call sequence.

    Table 6/Figure 3 replay a *synthetic* phased Zipf trace (the real
    Word97 suite being unavailable).  As a sanity check, this replays the
    call sequence the reference interpreter actually produced while
    running the benchmark's driver workload — shorter and less phased,
    but entirely non-synthetic — and confirms the buffer responds with
    the same qualitative shape (hit rate rising, re-translation falling).
    """
    sizes = context.jit_function_sizes(name)
    x86 = context.x86_size(name)
    dictionary = context.ssd_dictionary_bytes(name)
    interpreter_trace = context.run(name).call_sequence
    synthetic_trace = word97_trace(context, name)
    rows = []
    for label, trace in (("interpreter", interpreter_trace),
                         ("synthetic", synthetic_trace)):
        points = sweep_buffer_sizes(sizes, trace, x86, list(ratios),
                                    dictionary_bytes=dictionary,
                                    costs=SSD_COSTS,
                                    items_per_function=context.item_counts(name))
        for point in points:
            rows.append([label, len(trace), point.buffer_ratio,
                         point.hit_rate_pct, point.megabytes_translated])
    return render_table(
        ["trace source", "calls", "buffer/x86", "hit %", "MB translated"],
        rows,
        title=(f"Validation: buffer behaviour under the interpreter's real "
               f"call sequence vs the synthetic phased trace ({name})"),
        precision=2) + "\n"


def run(context: ExperimentContext) -> str:
    return "\n".join([
        branch_target_ablation(context),
        base_codec_ablation(context),
        sequence_length_ablation(context),
        matching_ablation(context),
        hybrid_ablation(context),
        buffer_policy_ablation(context),
        compression_landscape(context),
        trace_source_validation(context),
    ])


def main(scale: float = 0.25) -> None:  # pragma: no cover - CLI glue
    print(run(ExperimentContext(scale=scale)))


if __name__ == "__main__":  # pragma: no cover
    main()
