"""Experiment: bytes on the wire for a fleet code update.

The paper's motivating scenario (section 1) is shipping compressed
programs to machines that already run an older version.  With the
``repro.delta`` subsystem a release travels as a verified patch against
the container the fleet already holds, so the exhibit measures what an
update actually costs:

* **update** — ``make_patch(v_N, v_{N+1})`` for a seeded maintenance
  release of every corpus benchmark (``repro.workloads.versions``),
  against the full ``v_{N+1}`` container a delta-less fleet would pull;
* **cold install** — ``make_patch(shared, v_1)`` against the
  corpus-trained shared base dictionary, the first-fetch cost for a
  machine that only holds the fleet artifact.

Every patch is applied and hash-verified before its size is reported,
and the acceptance gate — median update ratio at or below 30% of a
full transfer — is asserted here, so regenerating the exhibit doubles
as the subsystem's size regression check.
"""

from __future__ import annotations

import statistics
from typing import List, Optional, Sequence

from ..analysis import render_table
from ..core import compress
from ..delta import apply_patch, make_patch, train_shared_base
from ..workloads.versions import version_pairs
from .common import ALL_BENCHMARKS, ExperimentContext

#: acceptance gate: median update patch <= 30% of the full container
MAX_MEDIAN_UPDATE_RATIO = 0.30


def run(context: ExperimentContext,
        names: Optional[Sequence[str]] = None,
        seed: int = 0) -> str:
    """Per-benchmark wire cost of delta updates vs full transfers."""
    selected = list(names) if names is not None else ALL_BENCHMARKS
    pairs = version_pairs(scale=context.scale, seed=seed, names=selected)
    shared = train_shared_base([old for _name, old, _new in pairs])

    headers = ["benchmark", "full B", "update B", "update %",
               "cold B", "cold %"]
    rows: List[List[object]] = []
    update_ratios: List[float] = []
    for name, old_program, new_program in pairs:
        old = compress(old_program).data
        new = compress(new_program).data
        update = make_patch(old, new)
        assert apply_patch(old, update) == new
        cold = make_patch(shared, old)
        assert apply_patch(shared, cold) == old
        update_ratio = len(update) / len(new)
        update_ratios.append(update_ratio)
        rows.append([name, len(new), len(update), f"{update_ratio:.1%}",
                     len(cold), f"{len(cold) / len(old):.1%}"])

    median = statistics.median(update_ratios)
    # The gate is calibrated for the benchmark scale (0.1 and up); on
    # tiny smoke-test containers the fixed patch header and section
    # framing dominate, so only enforce it at calibrated sizes.
    if context.scale >= 0.1 and median > MAX_MEDIAN_UPDATE_RATIO:
        raise AssertionError(
            f"median update patch is {median:.1%} of a full transfer, "
            f"above the {MAX_MEDIAN_UPDATE_RATIO:.0%} gate")
    rows.append(["median", "", "", f"{median:.1%}", "", ""])
    return render_table(
        headers, rows,
        title="Delta updates: bytes on the wire vs full transfer "
              f"(scale={context.scale}, shared base "
              f"{len(shared)} B)")
