"""Experiment: the codec registry dimension of the size story.

The paper compares SSD against BRISC and stream-oriented LZ (section 2,
Table 5).  With the pluggable codec registry those comparisons stop
being bespoke code paths: every registered codec compresses the same
benchmark through the same ``repro.codecs`` interface, envelope bytes
included, and the profile-guided ``auto`` selector shows which codec a
deployment would actually pick per program.  The invariant the selector
must keep — ``auto`` is never larger than plain ``ssd`` — is asserted
here, so regenerating the exhibit doubles as a regression check.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis import render_table
from ..codecs import codec_ids, get_codec, select
from .common import ALL_BENCHMARKS, ExperimentContext


def concrete_codec_ids() -> List[str]:
    """Registered codecs that can land on disk (selectors excluded)."""
    return [codec_id for codec_id in codec_ids()
            if get_codec(codec_id).wire_id]


def run(context: ExperimentContext,
        names: Optional[Sequence[str]] = None) -> str:
    """Per-benchmark container bytes for every registered codec."""
    names = list(names) if names is not None else ALL_BENCHMARKS
    candidates = concrete_codec_ids()
    headers = (["benchmark", "x86 B"]
               + [f"{codec_id} B" for codec_id in candidates]
               + ["auto pick", "auto B"])
    rows: List[List[object]] = []
    for name in names:
        program = context.program(name)
        x86 = context.x86_size(name)
        selection = select(program, candidates=tuple(candidates))
        auto_bytes = selection.output.size
        ssd_bytes = selection.totals.get("ssd")
        if ssd_bytes is not None and auto_bytes > ssd_bytes:
            raise AssertionError(
                f"{name}: auto produced {auto_bytes} B, larger than "
                f"plain ssd ({ssd_bytes} B)")
        rows.append([name, x86]
                    + [selection.totals[codec_id] for codec_id in candidates]
                    + [selection.chosen, auto_bytes])
    return render_table(
        headers, rows,
        title="Codec registry: container bytes per benchmark "
              f"(scale={context.scale})")
