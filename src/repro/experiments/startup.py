"""Experiment startup — application start latency from compressed code.

Section 1 of the paper: "we used [SSD] to reduce the number of code pages
required to start Microsoft Word97.  Because SSD yields decompression
speed of 7.8 megabytes per second, disk latency dominated decompression
time and Word97 started 14% faster than the same version compiled to
optimized x86 instructions."

The model::

    native start = startup_bytes(native)     / disk_bandwidth
    ssd start    = startup_bytes(compressed) / disk_bandwidth
                   + dictionary decompression (modelled cycles)
                   + startup-set copy-phase translation (modelled cycles)

where the startup set is the fraction of functions an application start
touches.  Swept over disk bandwidths: on period disks the smaller image
wins (the paper's observation); on fast disks decompression eats the
advantage — the memory-hierarchy trade stated in the introduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis import render_table
from ..jit import SSD_COSTS, Translator, build_tables, seconds
from .common import ExperimentContext

#: fraction of an application's code a start-up touches
DEFAULT_STARTUP_FRACTION = 0.4
#: late-1990s desktop disk throughput (sustained), MB/s — the regime the
#: paper's Word97 measurement lived in
PAPER_ERA_DISK_MBPS = 2.5
PAPER_STARTUP_SPEEDUP_PCT = 14.0


@dataclass(frozen=True)
class StartupPoint:
    disk_mbps: float
    native_seconds: float
    ssd_seconds: float

    @property
    def speedup_pct(self) -> float:
        return 100.0 * (self.native_seconds - self.ssd_seconds) / self.native_seconds


def model_startup(context: ExperimentContext, name: str = "word97",
                  startup_fraction: float = DEFAULT_STARTUP_FRACTION,
                  disk_sweep: Sequence[float] = (1.0, 2.5, 4.0, 8.0, 20.0, 80.0),
                  ) -> List[StartupPoint]:
    """Model native vs SSD start across disk bandwidths."""
    if not 0 < startup_fraction <= 1:
        raise ValueError(f"startup_fraction must be in (0, 1], got {startup_fraction}")
    x86 = context.x86_size(name)
    compressed = context.ssd(name)
    reader = context.reader(name)
    tables = build_tables(reader)
    translator = Translator(reader, tables)

    startup_count = max(1, int(reader.function_count * startup_fraction))
    produced = 0
    for findex in range(startup_count):
        produced += translator.translate_function(findex).size

    # The paper's 7.8 MB/s decompression figure is end-to-end (dictionary
    # work amortized into the per-output-byte rate), which is exactly the
    # cycle model's dictionary-phase rate; charge it on the startup set's
    # produced bytes.
    decompress_seconds = seconds(SSD_COSTS.dict_byte_cycles * produced)
    points = []
    for disk_mbps in disk_sweep:
        native_start = (x86 * startup_fraction) / (disk_mbps * 1e6)
        ssd_start = ((compressed.size * startup_fraction) / (disk_mbps * 1e6)
                     + decompress_seconds)
        points.append(StartupPoint(disk_mbps=disk_mbps,
                                   native_seconds=native_start,
                                   ssd_seconds=ssd_start))
    return points


def run(context: ExperimentContext, name: str = "word97") -> str:
    points = model_startup(context, name)
    rows = []
    for point in points:
        paper = PAPER_STARTUP_SPEEDUP_PCT if point.disk_mbps == PAPER_ERA_DISK_MBPS else None
        rows.append([point.disk_mbps,
                     point.native_seconds * 1000,
                     point.ssd_seconds * 1000,
                     paper,
                     point.speedup_pct])
    return render_table(
        ["disk MB/s", "native ms", "ssd ms", "paper speedup%", "our speedup%"],
        rows,
        title=(f"Startup latency model ({name}, scale={context.scale}) — "
               f"the paper measured Word97 starting 14% faster from SSD on a "
               f"period disk; the crossover to native-wins appears as disks "
               f"get faster"),
        precision=1) + "\n"


def main(scale: float = 0.25) -> None:  # pragma: no cover - CLI glue
    print(run(ExperimentContext(scale=scale)))


if __name__ == "__main__":  # pragma: no cover
    main()
