"""Experiment table1 — redundancy of instructions in benchmark programs.

Regenerates every column of the paper's Table 1 for the nine synthetic
benchmarks and prints paper-vs-measured values.  The expected shape: all
programs re-use instructions heavily; re-use grows with program size; all
programs >= 150 KB of native code re-use each instruction >= ~6 times.
"""

from __future__ import annotations

from typing import List

from ..analysis import measure_redundancy, render_table
from ..workloads import profile
from .common import ALL_BENCHMARKS, ExperimentContext


def run(context: ExperimentContext, names: List[str] = None) -> str:
    names = names or ALL_BENCHMARKS
    rows = []
    for name in names:
        paper = profile(name).table1
        stats = measure_redundancy(context.program(name),
                                   x86_bytes=context.x86_size(name))
        rows.append([
            name,
            stats.x86_bytes,
            f"{stats.total_instructions}/{stats.unique_instructions}",
            paper.avg_reuse,
            stats.avg_reuse,
            paper.unique_digrams,
            stats.unique_digrams,
            paper.digram_reuse,
            stats.digram_reuse,
            paper.top_sequence_reuse,
            stats.top_sequence_reuse,
        ])
    headers = ["program", "x86 B", "total/unique",
               "reuse(paper)", "reuse(ours)",
               "digrams(paper)", "digrams(ours)",
               "dreuse(paper)", "dreuse(ours)",
               "top10%(paper)", "top10%(ours)"]
    note = (f"Table 1 — instruction redundancy (scale={context.scale}; paper "
            f"columns are the original full-size measurements)")
    return render_table(headers, rows, title=note, precision=1) + "\n"


def main(scale: float = 0.25) -> None:  # pragma: no cover - CLI glue
    print(run(ExperimentContext(scale=scale)))


if __name__ == "__main__":  # pragma: no cover
    main()
