"""One module per paper exhibit, plus the ``ssd-repro`` CLI.

* ``table1`` — instruction/digram redundancy
* ``table5`` — compression ratios + execution-overhead decomposition
* ``table6`` — buffer sweep: MB translated, hit rate (word97)
* ``figure3`` — RAM-constrained overhead, SSD vs BRISC (word97)
* ``throughput`` — decompression/translation rates (measured + modelled)
* ``startup`` — application start latency vs disk bandwidth (section 1)
* ``ablations`` — branch-target mode, base codec, sequence length, policy
* ``delta`` — update/cold-install wire cost of delta patches vs full
  transfers (the ``repro.delta`` acceptance exhibit)
"""

from .common import ALL_BENCHMARKS, ExperimentContext

__all__ = ["ALL_BENCHMARKS", "ExperimentContext"]
