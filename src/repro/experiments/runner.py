"""Command-line entry point: regenerate any paper exhibit.

Usage::

    ssd-repro table1 [--scale 1.0]
    ssd-repro table5 [--scale 0.25] [--no-brisc] [--no-overhead]
    ssd-repro table6
    ssd-repro figure3
    ssd-repro throughput
    ssd-repro ablations
    ssd-repro codecs
    ssd-repro delta
    ssd-repro all [--scale 0.25] [--out results.txt]

``--scale 1.0`` reproduces the paper's program sizes (word97 = 1.4M
instructions; the full run takes several minutes).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from . import (
    ablations,
    codecs,
    delta,
    figure3,
    startup,
    table1,
    table5,
    table6,
    throughput,
)
from .common import ExperimentContext

EXHIBITS = {
    "table1": lambda ctx, args: table1.run(ctx),
    "table5": lambda ctx, args: table5.run(ctx, include_brisc=not args.no_brisc,
                                           include_overhead=not args.no_overhead),
    "table6": lambda ctx, args: table6.run(ctx),
    "figure3": lambda ctx, args: figure3.run(ctx),
    "throughput": lambda ctx, args: throughput.run(ctx),
    "startup": lambda ctx, args: startup.run(ctx),
    "ablations": lambda ctx, args: ablations.run(ctx),
    "codecs": lambda ctx, args: codecs.run(ctx),
    "delta": lambda ctx, args: delta.run(ctx),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ssd-repro",
        description="Regenerate the tables and figures of 'Split-Stream "
                    "Dictionary Program Compression' (PLDI 2000).")
    parser.add_argument("exhibit", choices=list(EXHIBITS) + ["all"],
                        help="which exhibit to regenerate")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="benchmark size scale (1.0 = paper sizes; "
                             "default 0.25)")
    parser.add_argument("--no-brisc", action="store_true",
                        help="skip the (slow) BRISC comparison in table5")
    parser.add_argument("--no-overhead", action="store_true",
                        help="skip the execution-overhead columns in table5")
    parser.add_argument("--out", type=str, default=None,
                        help="also write output to this file")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    context = ExperimentContext(scale=args.scale)
    names = list(EXHIBITS) if args.exhibit == "all" else [args.exhibit]
    chunks: List[str] = []
    for name in names:
        start = time.perf_counter()
        output = EXHIBITS[name](context, args)
        elapsed = time.perf_counter() - start
        chunks.append(output)
        chunks.append(f"[{name} completed in {elapsed:.1f}s]\n")
        print(chunks[-2])
        print(chunks[-1])
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(chunks))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
