"""Experiment table5 — compression effectiveness and execution overhead.

Regenerates both halves of the paper's Table 5:

* size: SSD and BRISC compressed size as a fraction of optimized native
  size, per benchmark and on average (paper: 0.47 vs 0.61 — SSD wins
  everywhere except the tiny ``compress``);
* time: total SSD execution overhead split into decompression/JIT
  translation vs reduced code quality (paper: 6.6% total, of which
  <= 0.7 points is decompression).

Sizes are measured on real compressed bytes; times are modelled cycles
(see ``repro.jit.costs`` and DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis import measure_overhead, measure_sizes, render_table
from ..jit import SSD_COSTS
from ..workloads import profile
from .common import ALL_BENCHMARKS, ExperimentContext


def run(context: ExperimentContext, names: Optional[List[str]] = None,
        include_brisc: bool = True, include_overhead: bool = True) -> str:
    names = names or ALL_BENCHMARKS
    rows = []
    ssd_ratios = []
    brisc_ratios = []
    overheads = []
    for name in names:
        paper = profile(name).table5
        program = context.program(name)
        brisc_dict = context.brisc_dictionary(exclude=name) if include_brisc else None
        sizes = measure_sizes(program, brisc_dictionary=brisc_dict,
                              x86_bytes=context.x86_size(name))
        # Reuse the cached compressed container for overheads.
        row = [
            name,
            sizes.x86_bytes,
            paper.ssd_ratio,
            sizes.ssd_ratio,
            paper.brisc_ratio,
            sizes.brisc_ratio,
        ]
        ssd_ratios.append(sizes.ssd_ratio)
        if sizes.brisc_ratio is not None:
            brisc_ratios.append(sizes.brisc_ratio)
        if include_overhead:
            report = measure_overhead(program, fuel=context.fuel,
                                      costs=SSD_COSTS,
                                      result=context.run(name),
                                      compressed_data=context.ssd(name).data)
            row += [
                paper.exec_overhead_pct,
                report.total_overhead_pct,
                paper.jit_overhead_pct,
                report.jit_overhead_pct,
                paper.quality_overhead_pct,
                report.quality_overhead_pct,
            ]
            overheads.append((report.total_overhead_pct, report.jit_overhead_pct,
                              report.quality_overhead_pct))
        rows.append(row)

    average = ["average", "",
               sum(profile(n).table5.ssd_ratio for n in names) / len(names),
               sum(ssd_ratios) / len(ssd_ratios),
               sum(profile(n).table5.brisc_ratio for n in names) / len(names),
               (sum(brisc_ratios) / len(brisc_ratios)) if brisc_ratios else None]
    if include_overhead and overheads:
        average += [
            sum(profile(n).table5.exec_overhead_pct for n in names) / len(names),
            sum(o[0] for o in overheads) / len(overheads),
            sum(profile(n).table5.jit_overhead_pct for n in names) / len(names),
            sum(o[1] for o in overheads) / len(overheads),
            sum(profile(n).table5.quality_overhead_pct for n in names) / len(names),
            sum(o[2] for o in overheads) / len(overheads),
        ]
    rows.append(average)

    headers = ["program", "x86 B", "ssd(paper)", "ssd(ours)",
               "brisc(paper)", "brisc(ours)"]
    if include_overhead:
        headers += ["ovh%(paper)", "ovh%(ours)", "jit%(paper)", "jit%(ours)",
                    "qual%(paper)", "qual%(ours)"]
    title = (f"Table 5 — compression ratios and execution overhead "
             f"(scale={context.scale}; sizes measured, times modelled)")
    return render_table(headers, rows, title=title, precision=2) + "\n"


def main(scale: float = 0.25) -> None:  # pragma: no cover - CLI glue
    print(run(ExperimentContext(scale=scale)))


if __name__ == "__main__":  # pragma: no cover
    main()
