"""The unified error taxonomy for hostile-input and resource faults.

Every failure a *byte-level decoder* can hit maps onto one of the types
below, so callers handle exactly one hierarchy instead of a grab bag of
``IndexError``/``struct.error`` internals.  The classes multiply-inherit
from the builtin exceptions historical callers caught (``ValueError``,
``EOFError``), so pre-taxonomy code keeps working:

* :class:`CorruptContainer` — structurally invalid bytes (root of the
  decode-error branch; also a ``ValueError``);
* :class:`ChecksumMismatch` — bytes contradict a stored CRC32;
* :class:`TruncatedStream` — input ended mid-field (also an ``EOFError``);
* :class:`LimitExceeded` — input is well-formed so far but would exceed a
  decode resource limit (expansion size, entry counts, varint width);
* :class:`BriscError` — a BRISC pattern stream or external dictionary is
  undecodable (a ``CorruptContainer`` so sweeps classify it with SSD's);
* :class:`BufferCapacityError` — a function cannot be placed in the JIT
  translation buffer (allocation failure, capacity exceeded).

Decode errors carry ``offset`` (byte position in the input being decoded)
and ``section`` (the container section name) when known, both reflected
in the rendered message.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Root of the library's typed error hierarchy."""


class FaultInjectionError(ReproError):
    """Raised by ``repro.faults`` for misuse of the harness itself."""


class CorruptContainer(ReproError, ValueError):
    """Container (or sub-stream) bytes are structurally invalid.

    ``offset`` is the byte position within the stream being decoded at
    which the inconsistency was detected; ``section`` names the container
    section when the decoder knows it.
    """

    def __init__(self, message: str, *,
                 offset: Optional[int] = None,
                 section: Optional[str] = None) -> None:
        self.offset = offset
        self.section = section
        detail = message
        if section is not None:
            detail += f" [section: {section}]"
        if offset is not None:
            detail += f" [byte offset {offset}]"
        super().__init__(detail)


class ChecksumMismatch(CorruptContainer):
    """Stored CRC32 disagrees with the bytes it covers."""


class TruncatedStream(CorruptContainer, EOFError):
    """Input ended in the middle of a field or declared region."""


class LimitExceeded(CorruptContainer):
    """Decoding would exceed a resource limit (size, count, expansion)."""


class BriscError(CorruptContainer):
    """A BRISC stream or pattern dictionary cannot be decoded.

    Promoted from ``repro.brisc.codec`` (where it was a bare
    ``ValueError``) so fault-sweep classification treats BRISC decode
    failures exactly like SSD container corruption; the original name
    remains importable from ``repro.brisc`` as an alias of this class.
    """


class BufferCapacityError(ReproError, ValueError):
    """A function cannot be placed in the JIT translation buffer."""


class ProtocolError(ReproError, ValueError):
    """A ``repro.serve`` wire frame is malformed (bad magic, CRC, version).

    Raised on both sides of the connection when received bytes cannot be
    framed or decoded; the connection is unrecoverable past this point
    because frame boundaries are lost.
    """

    def __init__(self, message: str, *,
                 offset: Optional[int] = None) -> None:
        self.offset = offset
        detail = message
        if offset is not None:
            detail += f" [byte offset {offset}]"
        super().__init__(detail)


class UnavailableError(ReproError):
    """The service cannot answer right now and says so cleanly.

    Raised by the cluster router when no live replica of a key remains
    (the cluster is below quorum for that key), by a draining server
    refusing new work, and by the retrying client when every attempt
    exhausted its backoff budget without reaching a live peer.  On the
    wire it travels as ``E_UNAVAILABLE``.  Unlike :class:`RemoteError`
    it signals *capacity/topology*, never a bad request: the same
    request can succeed verbatim once a replica returns.
    """

    def __init__(self, message: str, *, attempts: int = 0) -> None:
        self.attempts = attempts
        detail = message
        if attempts:
            detail += f" [after {attempts} attempts]"
        super().__init__(detail)


class RemoteError(ReproError):
    """The server answered a ``repro.serve`` request with an ERROR frame.

    ``code`` is the wire error code (see ``repro.serve.protocol`` and
    docs/PROTOCOL.md); ``code_name`` its symbolic name when known.
    """

    def __init__(self, message: str, *, code: int,
                 code_name: str = "") -> None:
        self.code = code
        self.code_name = code_name or f"E_{code}"
        super().__init__(f"[{self.code_name}] {message}")


class DeltaError(CorruptContainer):
    """A ``repro.delta`` patch is undecodable or unapplicable.

    Covers structural patch damage (bad header, truncated diff, a chain
    that cycles) and reconstruction failures (the applied result does
    not hash to the patch's declared target).  A ``CorruptContainer``
    so fault sweeps classify patch corruption with every other decode
    fault.
    """


class BaseMismatch(DeltaError):
    """The base supplied to patch application is not the patch's base.

    ``expected`` and ``got`` are hex SHA-256 digests.  Raised *before*
    any reconstruction happens, so a wrong base can never produce a
    wrong container.
    """

    def __init__(self, message: str, *, expected: str = "",
                 got: str = "") -> None:
        self.expected = expected
        self.got = got
        super().__init__(message)


class NoBaseError(ReproError):
    """A delta was requested against a base this store does not hold.

    Deliberately *not* a :class:`CorruptContainer` (nothing is corrupt)
    and not a ``KeyError`` (which the serve dispatch maps to
    ``E_NOT_FOUND``): on the wire it travels as ``E_NO_BASE``, the
    negotiation signal telling the client to fall back to a full
    container transfer.
    """

    def __init__(self, message: str, *, base_hash: str = "") -> None:
        self.base_hash = base_hash
        super().__init__(message)


def as_corrupt(exc: BaseException, *, section: Optional[str] = None,
               offset: Optional[int] = None) -> CorruptContainer:
    """Wrap a non-taxonomy exception as :class:`CorruptContainer`.

    Decoder boundaries use this to guarantee that whatever a lower layer
    raised (legacy ``ValueError``/``EOFError``), the caller sees a typed
    error; the original exception is preserved as ``__cause__`` by the
    ``raise ... from`` at the call site.
    """
    if isinstance(exc, CorruptContainer):
        return exc
    if isinstance(exc, EOFError):
        return TruncatedStream(str(exc) or exc.__class__.__name__,
                               section=section, offset=offset)
    return CorruptContainer(str(exc) or exc.__class__.__name__,
                            section=section, offset=offset)
