"""Performance subsystem: per-phase profiling and process-level parallelism.

Two concerns the rest of the pipeline threads through:

* :mod:`repro.perf.profile` — :class:`PhaseProfile`, a wall-clock phase
  timer that ``compress``/``decompress`` (and the ``ssd`` CLI via
  ``--profile``) fill in so throughput claims can be decomposed into the
  paper's phases (dictionary build vs copy phase, etc.).
* :mod:`repro.perf.parallel` — a small fan-out helper over
  ``concurrent.futures.ProcessPoolExecutor`` used by the ``jobs=``
  parameter of ``repro.core.compress``.  The contract is strict: parallel
  results are byte-identical to the serial path, whatever the worker
  count.
"""

from .parallel import fanout, get_shared, resolve_jobs
from .profile import NULL_PROFILE, PhaseProfile

__all__ = [
    "NULL_PROFILE",
    "PhaseProfile",
    "fanout",
    "get_shared",
    "resolve_jobs",
]
