"""Process-level fan-out for the compression pipeline.

``fanout(worker, tasks, jobs, shared=...)`` maps ``worker`` over ``tasks``
preserving order, either serially (``jobs <= 1``) or on a
``ProcessPoolExecutor``.  Results must be deterministic functions of
``(task, shared)`` so the parallel path is byte-identical to the serial
one — the pipeline's stages (partial n-gram counts, per-function
segmentation, per-function item encoding) all have this shape.

Large read-only state (the merged n-gram table, segment layouts) travels
via :func:`get_shared` rather than per-task arguments: under the ``fork``
start method (Linux) workers inherit it for free at pool creation; under
``spawn`` it is pickled once per worker through the pool initializer
instead of once per task.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, TypeVar, Union

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Read-only state visible to workers via :func:`get_shared`.
_SHARED: Any = None


def get_shared() -> Any:
    """The ``shared`` value of the enclosing :func:`fanout` call."""
    return _SHARED


def _set_shared(shared: Any) -> None:
    global _SHARED
    _SHARED = shared


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Normalize a ``jobs`` request to a worker count.

    ``None`` or ``1`` mean serial; ``0`` or ``"auto"`` mean one worker per
    CPU; any other positive integer is taken literally.
    """
    if jobs is None:
        return 1
    if jobs == "auto" or jobs == 0:
        return os.cpu_count() or 1
    count = int(jobs)
    if count < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs!r}")
    return count


def fanout(worker: Callable[[_T], _R],
           tasks: Sequence[_T],
           jobs: Union[int, str, None],
           shared: Any = None,
           chunksize: Optional[int] = None) -> List[_R]:
    """Map ``worker`` over ``tasks`` in order, with ``jobs`` processes.

    ``worker`` must be a module-level function (picklable by qualified
    name) and may read ``shared`` through :func:`get_shared` — in the
    serial path and in every worker process alike.
    """
    tasks = list(tasks)
    count = resolve_jobs(jobs)
    if tasks:
        count = min(count, len(tasks))
    if count <= 1 or not tasks:
        _set_shared(shared)
        try:
            return [worker(task) for task in tasks]
        finally:
            _set_shared(None)
    if chunksize is None:
        chunksize = max(1, len(tasks) // (count * 4))
    context = multiprocessing.get_context()
    _set_shared(shared)  # fork children inherit this snapshot
    try:
        if context.get_start_method() == "fork":
            pool = ProcessPoolExecutor(max_workers=count, mp_context=context)
        else:  # pragma: no cover - non-fork platforms
            pool = ProcessPoolExecutor(max_workers=count, mp_context=context,
                                       initializer=_set_shared,
                                       initargs=(shared,))
        with pool:
            return list(pool.map(worker, tasks, chunksize=chunksize))
    finally:
        _set_shared(None)
