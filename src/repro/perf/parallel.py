"""Process-level fan-out for the compression pipeline.

``fanout(worker, tasks, jobs, shared=...)`` maps ``worker`` over ``tasks``
preserving order, either serially (``jobs <= 1``) or on a
``ProcessPoolExecutor``.  Results must be deterministic functions of
``(task, shared)`` so the parallel path is byte-identical to the serial
one — the pipeline's stages (partial n-gram counts, per-function
segmentation, per-function item encoding) all have this shape.

Large read-only state (the merged n-gram table, segment layouts) travels
via :func:`get_shared` rather than per-task arguments: under the ``fork``
start method (Linux) workers inherit it for free at pool creation; under
``spawn`` it is pickled once per worker through the pool initializer
instead of once per task.

Parallel execution is an optimization, never a correctness requirement:
if a worker process dies (OOM kill, segfault) or stalls past ``timeout``,
:func:`fanout` retries on a fresh pool up to ``retries`` times and then
falls back to in-process serial execution, which always produces the
same results.  The most recent call's degradation path is recorded in
:data:`LAST_OUTCOME` for tests and diagnostics.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, TypeVar, Union

_T = TypeVar("_T")
_R = TypeVar("_R")

#: failures that mean "the pool broke", not "the worker function raised"
_POOL_FAILURES = (BrokenExecutor, FuturesTimeoutError, TimeoutError, OSError)

#: Read-only state visible to workers via :func:`get_shared`.
_SHARED: Any = None


def get_shared() -> Any:
    """The ``shared`` value of the enclosing :func:`fanout` call."""
    return _SHARED


def _set_shared(shared: Any) -> None:
    global _SHARED
    _SHARED = shared


@dataclass
class FanoutOutcome:
    """How the most recent :func:`fanout` call actually executed."""

    #: 'serial' | 'parallel' | 'serial-fallback'
    mode: str
    #: pool attempts made (0 for the plain serial path)
    attempts: int = 0
    #: str(exception) for each failed pool attempt, in order
    failures: List[str] = field(default_factory=list)


#: Degradation record of the most recent fanout call (diagnostics only).
LAST_OUTCOME: FanoutOutcome = FanoutOutcome(mode="serial")


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Normalize a ``jobs`` request to a worker count.

    ``None`` or ``1`` mean serial; ``0`` or ``"auto"`` mean one worker per
    CPU; any other positive integer is taken literally.
    """
    if jobs is None:
        return 1
    if jobs == "auto" or jobs == 0:
        return os.cpu_count() or 1
    count = int(jobs)
    if count < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs!r}")
    return count


def _parallel_map(worker: Callable[[_T], _R],
                  tasks: List[_T],
                  count: int,
                  shared: Any,
                  chunksize: int,
                  timeout: Optional[float]) -> List[_R]:
    """One pool attempt.  Raises a ``_POOL_FAILURES`` member on breakage."""
    context = multiprocessing.get_context()
    if context.get_start_method() == "fork":
        pool = ProcessPoolExecutor(max_workers=count, mp_context=context)
    else:  # pragma: no cover - non-fork platforms
        pool = ProcessPoolExecutor(max_workers=count, mp_context=context,
                                   initializer=_set_shared,
                                   initargs=(shared,))
    try:
        results = list(pool.map(worker, tasks, chunksize=chunksize,
                                timeout=timeout))
        pool.shutdown(wait=True)
        return results
    except BaseException:
        # Don't wait for wedged/hung workers: cancel pending work and
        # kill the processes outright so the caller can retry promptly.
        # (shutdown() clears pool._processes, so snapshot first.)
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5)
        raise


def fanout(worker: Callable[[_T], _R],
           tasks: Sequence[_T],
           jobs: Union[int, str, None],
           shared: Any = None,
           chunksize: Optional[int] = None,
           retries: int = 1,
           timeout: Optional[float] = None) -> List[_R]:
    """Map ``worker`` over ``tasks`` in order, with ``jobs`` processes.

    ``worker`` must be a module-level function (picklable by qualified
    name) and may read ``shared`` through :func:`get_shared` — in the
    serial path and in every worker process alike.

    A broken pool (dead worker process) or a per-map ``timeout`` expiry
    is retried on a fresh pool up to ``retries`` times; after that the
    work runs serially in-process.  Exceptions raised *by the worker
    function itself* are not retried — they propagate, identically in
    serial and parallel modes.
    """
    global LAST_OUTCOME
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    tasks = list(tasks)
    count = resolve_jobs(jobs)
    if tasks:
        count = min(count, len(tasks))
    if count <= 1 or not tasks:
        LAST_OUTCOME = FanoutOutcome(mode="serial")
        _set_shared(shared)
        try:
            return [worker(task) for task in tasks]
        finally:
            _set_shared(None)
    if chunksize is None:
        chunksize = max(1, len(tasks) // (count * 4))
    outcome = FanoutOutcome(mode="parallel")
    _set_shared(shared)  # fork children inherit this snapshot
    try:
        for _ in range(1 + retries):
            outcome.attempts += 1
            try:
                results = _parallel_map(worker, tasks, count, shared,
                                        chunksize, timeout)
            except _POOL_FAILURES as exc:
                outcome.failures.append(f"{type(exc).__name__}: {exc}")
                continue
            LAST_OUTCOME = outcome
            return results
        # Every pool attempt broke: the answer must still be computed.
        outcome.mode = "serial-fallback"
        LAST_OUTCOME = outcome
        return [worker(task) for task in tasks]
    finally:
        _set_shared(None)
