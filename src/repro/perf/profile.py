"""Per-phase wall-clock profiling.

A :class:`PhaseProfile` accumulates named phase timings::

    profile = PhaseProfile()
    with profile.phase("dictionary"):
        ...
    print(profile.format())

Phases may repeat (times accumulate) and nest (each phase records its own
wall time; nesting is not subtracted — the phase names used by the
pipeline are chosen to be disjoint).  ``compress(..., profile=p)`` and
``decompress(..., profile=p)`` fill a caller-supplied profile; the ``ssd``
CLI's ``--profile`` flag prints one to stderr.

:data:`NULL_PROFILE` is a no-op stand-in so pipeline code can time phases
unconditionally without branching on ``profile is None``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class PhaseProfile:
    """Accumulates wall-clock seconds per named phase, in first-seen order."""

    def __init__(self) -> None:
        self.timings: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block and accumulate it under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    def record(self, name: str, seconds: float) -> None:
        self.timings[name] = self.timings.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    @property
    def total(self) -> float:
        return sum(self.timings.values())

    def as_dict(self) -> Dict[str, float]:
        return dict(self.timings)

    def format(self, title: str = "phase timings") -> str:
        """Aligned report: one line per phase with ms and share of total."""
        lines = [f"{title}:"]
        total = self.total or 1.0
        width = max((len(name) for name in self.timings), default=0)
        for name, seconds in self.timings.items():
            lines.append(f"  {name:<{width}}  {seconds * 1e3:>9.2f} ms"
                         f"  {100.0 * seconds / total:>5.1f}%")
        lines.append(f"  {'total':<{width}}  {self.total * 1e3:>9.2f} ms")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseProfile({self.timings!r})"


class _NullProfile(PhaseProfile):
    """A profile that measures nothing (avoids timer overhead on hot paths)."""

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        yield

    def record(self, name: str, seconds: float) -> None:
        pass


#: Shared no-op profile for ``profile=None`` call sites.
NULL_PROFILE = _NullProfile()


def ensure(profile: Optional[PhaseProfile]) -> PhaseProfile:
    """Return ``profile`` or the shared no-op profile."""
    return profile if profile is not None else NULL_PROFILE
