"""Per-phase wall-clock profiling, backed by ``repro.obs`` spans.

A :class:`PhaseProfile` accumulates named phase timings::

    profile = PhaseProfile()
    with profile.phase("dictionary"):
        ...
    print(profile.format())

Phases may repeat (times accumulate) and nest (each phase records its own
wall time; nesting is not subtracted — the phase names used by the
pipeline are chosen to be disjoint).  ``compress(..., profile=p)`` and
``decompress(..., profile=p)`` fill a caller-supplied profile; the ``ssd``
CLI's ``--profile`` flag prints one to stderr.

Since the observability refactor this class is an *adapter*: every
``phase()`` opens a span on the shared :data:`repro.obs.TRACER` (so
profiled phases appear in trace exports, parent-linked to whatever span
is ambient — e.g. the ``compress`` root span the CLI opens for
``--trace``), and the profile itself is just the span durations folded
into the legacy ``timings``/``counts`` view.  The ``format()`` output is
byte-identical to the pre-adapter implementation.

:data:`NULL_PROFILE` is a no-op stand-in so pipeline code can time phases
unconditionally without branching on ``profile is None``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from ..obs import TRACER


class PhaseProfile:
    """Accumulates wall-clock seconds per named phase, in first-seen order.

    The underlying record is a list of ``(name, seconds)`` events — one
    per finished span — so the object stays cheap to pickle across the
    ``repro.perf.parallel`` process boundary; ``timings``/``counts`` are
    folded views over it.
    """

    def __init__(self) -> None:
        self._events: List[Tuple[str, float]] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block as an obs span; accumulate under ``name``."""
        node = None
        try:
            with TRACER.span(name) as node:
                yield
        finally:
            if node is not None and node.duration is not None:
                self._events.append((name, node.duration))

    def record(self, name: str, seconds: float) -> None:
        self._events.append((name, seconds))

    @property
    def timings(self) -> Dict[str, float]:
        folded: Dict[str, float] = {}
        for name, seconds in self._events:
            folded[name] = folded.get(name, 0.0) + seconds
        return folded

    @property
    def counts(self) -> Dict[str, int]:
        folded: Dict[str, int] = {}
        for name, _seconds in self._events:
            folded[name] = folded.get(name, 0) + 1
        return folded

    @property
    def total(self) -> float:
        return sum(seconds for _name, seconds in self._events)

    def as_dict(self) -> Dict[str, float]:
        return dict(self.timings)

    def format(self, title: str = "phase timings") -> str:
        """Aligned report: one line per phase with ms and share of total."""
        timings = self.timings
        lines = [f"{title}:"]
        total = self.total or 1.0
        width = max((len(name) for name in timings), default=0)
        for name, seconds in timings.items():
            lines.append(f"  {name:<{width}}  {seconds * 1e3:>9.2f} ms"
                         f"  {100.0 * seconds / total:>5.1f}%")
        lines.append(f"  {'total':<{width}}  {self.total * 1e3:>9.2f} ms")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseProfile({self.timings!r})"


class _NullProfile(PhaseProfile):
    """A profile that measures nothing (avoids timer overhead on hot paths)."""

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        yield

    def record(self, name: str, seconds: float) -> None:
        pass


#: Shared no-op profile for ``profile=None`` call sites.
NULL_PROFILE = _NullProfile()


def ensure(profile: Optional[PhaseProfile]) -> PhaseProfile:
    """Return ``profile`` or the shared no-op profile."""
    return profile if profile is not None else NULL_PROFILE
