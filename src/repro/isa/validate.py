"""Structural validation of programs.

Compression, interpretation and JIT translation all assume well-formed
inputs; this module centralizes the checks so every pipeline stage can
assert the same invariants.  ``ValidationError`` messages carry function
and instruction coordinates for debuggability.
"""

from __future__ import annotations

from typing import List

from .program import Program


class ValidationError(ValueError):
    """A program violates a structural invariant."""


def validate_program(program: Program) -> None:
    """Raise :class:`ValidationError` on the first violated invariant.

    Checked invariants:

    * at least one function; entry index in range;
    * functions are non-empty;
    * every function ends with an instruction that does not fall through
      (``ret``, ``jmp``, ``jr``, or ``halt``);
    * branch targets lie within their function;
    * call targets name existing functions;
    * register numbers are validated by ``Instruction`` itself.
    """
    if not program.functions:
        raise ValidationError(f"{program.name}: program has no functions")
    if not 0 <= program.entry < len(program.functions):
        raise ValidationError(f"{program.name}: entry index {program.entry} out of range")
    for findex, fn in enumerate(program.functions):
        if not fn.insns:
            raise ValidationError(f"{program.name}/{fn.name}: function is empty")
        last = fn.insns[-1]
        if last.meta.falls_through:
            raise ValidationError(
                f"{program.name}/{fn.name}: falls off the end "
                f"(last instruction {last.render()!r})"
            )
        for iindex, insn in enumerate(fn.insns):
            if insn.is_branch and not 0 <= insn.target < len(fn.insns):
                raise ValidationError(
                    f"{program.name}/{fn.name}[{iindex}]: branch target "
                    f"{insn.target} outside function ({len(fn.insns)} instructions)"
                )
            if insn.is_call and not 0 <= insn.target < len(program.functions):
                raise ValidationError(
                    f"{program.name}/{fn.name}[{iindex}]: call target "
                    f"{insn.target} is not a function index"
                )


def validation_issues(program: Program) -> List[str]:
    """Collect *all* invariant violations instead of stopping at the first."""
    issues: List[str] = []
    if not program.functions:
        return [f"{program.name}: program has no functions"]
    if not 0 <= program.entry < len(program.functions):
        issues.append(f"{program.name}: entry index {program.entry} out of range")
    for fn in program.functions:
        if not fn.insns:
            issues.append(f"{program.name}/{fn.name}: function is empty")
            continue
        if fn.insns[-1].meta.falls_through:
            issues.append(f"{program.name}/{fn.name}: falls off the end")
        for iindex, insn in enumerate(fn.insns):
            if insn.is_branch and not 0 <= insn.target < len(fn.insns):
                issues.append(
                    f"{program.name}/{fn.name}[{iindex}]: branch target out of range"
                )
            if insn.is_call and not 0 <= insn.target < len(program.functions):
                issues.append(
                    f"{program.name}/{fn.name}[{iindex}]: call target out of range"
                )
    return issues
