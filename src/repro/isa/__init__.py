"""The virtual instruction set architecture (OmniVM stand-in).

A RISC-style, 32-register load/store virtual ISA with variable-size
immediate and pc-relative branch-target fields.  This is the substrate SSD
compresses: the paper used the (unreleased) Omniware VM; see DESIGN.md for
why this substitution preserves the behaviour being studied.
"""

from .asm import AsmError, assemble, disassemble
from .cfg import BasicBlock, basic_blocks, block_id_map, leaders
from .encoding import (
    decode_program,
    encode_program,
    instruction_size,
    program_size,
)
from .instruction import (
    Instruction,
    TARGET_SIZES,
    immediate_size_class,
    target_size_class,
)
from .opcodes import (
    NUM_REGISTERS,
    OP_BY_CODE,
    OP_BY_MNEMONIC,
    OP_TABLE,
    REG_FP,
    REG_RA,
    REG_RV,
    REG_SP,
    REG_ZERO,
    Kind,
    Op,
    OpInfo,
    info,
)
from .program import Function, Program, concatenate
from .validate import ValidationError, validate_program, validation_issues

__all__ = [
    "AsmError",
    "BasicBlock",
    "Function",
    "Instruction",
    "Kind",
    "NUM_REGISTERS",
    "OP_BY_CODE",
    "OP_BY_MNEMONIC",
    "OP_TABLE",
    "Op",
    "OpInfo",
    "Program",
    "REG_FP",
    "REG_RA",
    "REG_RV",
    "REG_SP",
    "REG_ZERO",
    "TARGET_SIZES",
    "ValidationError",
    "assemble",
    "basic_blocks",
    "block_id_map",
    "concatenate",
    "decode_program",
    "disassemble",
    "encode_program",
    "immediate_size_class",
    "info",
    "instruction_size",
    "leaders",
    "program_size",
    "target_size_class",
    "validate_program",
    "validation_issues",
]
