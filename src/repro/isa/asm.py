"""Text assembler and disassembler for the virtual ISA.

A small, line-oriented format used by tests, examples and documentation::

    # comment
    func main
        li   r1, 10
    loop:
        addi r1, r1, -1
        bnez r1, loop
        call helper
        ret
    end

    func helper
        ret
    end

Branch operands are label names (resolved to instruction indices), call
operands are function names (resolved to function indices).  The
disassembler produces text the assembler accepts (round-trip property is
tested).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .instruction import Instruction
from .opcodes import Kind, OP_BY_MNEMONIC, info
from .program import Function, Program


class AsmError(ValueError):
    """Raised for malformed assembly input, with line information."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_LABEL_RE = re.compile(r"^([A-Za-z_][\w.$]*):$")
_MEM_RE = re.compile(r"^(-?\d+)\(r(\d+)\)$")


def _parse_register(token: str, line: int) -> int:
    if not token.startswith("r") or not token[1:].isdigit():
        raise AsmError(line, f"expected register, got {token!r}")
    return int(token[1:])


def _parse_int(token: str, line: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AsmError(line, f"expected integer, got {token!r}") from None


def _split_operands(rest: str) -> List[str]:
    return [tok.strip() for tok in rest.split(",")] if rest.strip() else []


def assemble(text: str) -> Program:
    """Assemble ``text`` into a :class:`Program`.

    The entry point is the function named ``main`` if present, else the
    first function.
    """
    functions: List[Function] = []
    function_names: List[str] = []
    # First pass over the text to learn function names (for call resolution).
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if line.startswith("func "):
            name = line[5:].strip()
            if not name:
                raise AsmError(line_number, "func requires a name")
            if name in function_names:
                raise AsmError(line_number, f"duplicate function {name!r}")
            function_names.append(name)
    if not function_names:
        raise AsmError(0, "no functions found")
    fn_index: Dict[str, int] = {name: i for i, name in enumerate(function_names)}

    current: Optional[str] = None
    insns: List[Tuple[int, str, List[str]]] = []
    labels: Dict[str, int] = {}

    def finish_function(end_line: int) -> None:
        nonlocal current
        built: List[Instruction] = []
        for index, (line_number, mnemonic, operands) in enumerate(insns):
            built.append(_build(line_number, mnemonic, operands, index, labels, fn_index))
        if not built:
            raise AsmError(end_line, f"function {current!r} is empty")
        functions.append(Function(name=current, insns=built))
        current = None

    def _build(line_number: int, mnemonic: str, operands: List[str], index: int,
               labels: Dict[str, int], fn_index: Dict[str, int]) -> Instruction:
        meta = OP_BY_MNEMONIC.get(mnemonic)
        if meta is None:
            raise AsmError(line_number, f"unknown opcode {mnemonic!r}")
        kind = meta.kind
        rd = rs1 = rs2 = imm = target = None
        want = []
        if kind is Kind.LOAD:
            want = ["rd", "mem"]
        elif kind is Kind.STORE:
            want = ["rs2", "mem"]
        elif kind is Kind.BRANCH:
            want = ["rs1", "rs2", "label"] if meta.uses_rs2 else ["rs1", "label"]
        elif kind is Kind.JUMP:
            want = ["label"]
        elif kind is Kind.CALL:
            want = ["func"]
        else:
            if meta.uses_rd:
                want.append("rd")
            if meta.uses_rs1:
                want.append("rs1")
            if meta.uses_rs2:
                want.append("rs2")
            if meta.uses_imm:
                want.append("imm")
        if len(operands) != len(want):
            raise AsmError(
                line_number,
                f"{mnemonic}: expected {len(want)} operands, got {len(operands)}",
            )
        for slot, token in zip(want, operands):
            if slot == "rd":
                rd = _parse_register(token, line_number)
            elif slot == "rs1":
                rs1 = _parse_register(token, line_number)
            elif slot == "rs2":
                rs2 = _parse_register(token, line_number)
            elif slot == "imm":
                imm = _parse_int(token, line_number)
            elif slot == "mem":
                match = _MEM_RE.match(token)
                if not match:
                    raise AsmError(line_number, f"expected offset(rN), got {token!r}")
                imm = int(match.group(1))
                rs1 = int(match.group(2))
            elif slot == "label":
                if token in labels:
                    target = labels[token]
                elif token.lstrip("-").isdigit():
                    target = int(token)
                else:
                    raise AsmError(line_number, f"undefined label {token!r}")
            elif slot == "func":
                if token in fn_index:
                    target = fn_index[token]
                elif token.isdigit():
                    target = int(token)
                else:
                    raise AsmError(line_number, f"unknown function {token!r}")
        return Instruction(op=meta.op, rd=rd, rs1=rs1, rs2=rs2, imm=imm, target=target)

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("func "):
            if current is not None:
                raise AsmError(line_number, "nested func")
            current = line[5:].strip()
            insns = []
            labels = {}
            continue
        if line == "end":
            if current is None:
                raise AsmError(line_number, "end outside func")
            finish_function(line_number)
            continue
        if current is None:
            raise AsmError(line_number, f"instruction outside func: {line!r}")
        label_match = _LABEL_RE.match(line)
        if label_match:
            label = label_match.group(1)
            if label in labels:
                raise AsmError(line_number, f"duplicate label {label!r}")
            labels[label] = len(insns)
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0]
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        insns.append((line_number, mnemonic, operands))
    if current is not None:
        raise AsmError(len(text.splitlines()), f"function {current!r} missing end")

    entry = fn_index.get("main", 0)
    return Program(name="asm", functions=functions, entry=entry)


def disassemble(program: Program) -> str:
    """Render ``program`` as text :func:`assemble` accepts."""
    lines: List[str] = []
    for fn in program.functions:
        lines.append(f"func {fn.name}")
        # Collect branch targets so we can print labels.
        targets = sorted({insn.target for insn in fn.insns if insn.is_branch})
        label_of = {t: f"L{t}" for t in targets}
        for index, insn in enumerate(fn.insns):
            if index in label_of:
                lines.append(f"{label_of[index]}:")
            lines.append("    " + _render(insn, label_of, program))
        lines.append("end")
        lines.append("")
    return "\n".join(lines)


def _render(insn: Instruction, label_of: Dict[int, str], program: Program) -> str:
    meta = info(insn.op)
    if meta.kind is Kind.LOAD:
        return f"{meta.mnemonic} r{insn.rd}, {insn.imm}(r{insn.rs1})"
    if meta.kind is Kind.STORE:
        return f"{meta.mnemonic} r{insn.rs2}, {insn.imm}(r{insn.rs1})"
    if meta.kind is Kind.BRANCH:
        label = label_of[insn.target]
        if meta.uses_rs2:
            return f"{meta.mnemonic} r{insn.rs1}, r{insn.rs2}, {label}"
        return f"{meta.mnemonic} r{insn.rs1}, {label}"
    if meta.kind is Kind.JUMP:
        return f"{meta.mnemonic} {label_of[insn.target]}"
    if meta.kind is Kind.CALL:
        if 0 <= insn.target < len(program.functions):
            return f"{meta.mnemonic} {program.functions[insn.target].name}"
        return f"{meta.mnemonic} {insn.target}"
    operands = []
    if meta.uses_rd:
        operands.append(f"r{insn.rd}")
    if meta.uses_rs1:
        operands.append(f"r{insn.rs1}")
    if meta.uses_rs2:
        operands.append(f"r{insn.rs2}")
    if meta.uses_imm:
        operands.append(str(insn.imm))
    if operands:
        return f"{meta.mnemonic} " + ", ".join(operands)
    return meta.mnemonic
