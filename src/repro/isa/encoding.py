"""Binary encoding of virtual-machine programs.

This is the *uncompressed* VM bytecode format: the form a program would
ship in without SSD.  It is a conventional variable-length encoding — one
opcode byte, one byte per register operand, size-tagged immediates and
pc-relative targets — so that the compression ratios we report are measured
against a credible dense baseline rather than a padded straw man.

Layout per instruction::

    opcode u8
    [mode u8]              only if the opcode has an imm or target field:
                           bits 0-1 encode imm size (0/1/2/4 -> tag 0..3),
                           bits 2-3 encode target size likewise
    registers              one u8 per used register operand (rd, rs1, rs2)
    imm                    little-endian signed, 1/2/4 bytes per mode
    target                 branches/jumps: signed pc-relative displacement
                           in instructions, from the following instruction;
                           calls: unsigned function index

Programs serialize as a varint function count, then per function a
varint instruction count and the instruction bytes.
"""

from __future__ import annotations

from typing import List, Tuple

from ..lz.varint import ByteReader, ByteWriter
from .instruction import Instruction, immediate_size_class, target_size_class
from .opcodes import OP_BY_CODE, info
from .program import Function, Program

_SIZE_TO_TAG = {0: 0, 1: 1, 2: 2, 4: 3}
_TAG_TO_SIZE = {0: 0, 1: 1, 2: 2, 3: 4}


def _write_signed(writer: ByteWriter, value: int, size: int) -> None:
    unsigned = value & ((1 << (8 * size)) - 1)
    for shift in range(0, 8 * size, 8):
        writer.write_u8((unsigned >> shift) & 0xFF)


def _read_signed(reader: ByteReader, size: int) -> int:
    value = 0
    for position in range(size):
        value |= reader.read_u8() << (8 * position)
    sign_bit = 1 << (8 * size - 1)
    return value - (1 << (8 * size)) if value & sign_bit else value


def encode_instruction(insn: Instruction, index: int, writer: ByteWriter) -> None:
    """Append the encoding of ``insn`` (at instruction index ``index``)."""
    meta = info(insn.op)
    writer.write_u8(meta.code)
    imm_size = immediate_size_class(insn.imm) if meta.uses_imm else 0
    if meta.uses_target:
        if meta.is_branch:
            displacement = insn.target - (index + 1)
            tgt_size = target_size_class(displacement)
        else:  # call: unsigned function index
            displacement = insn.target
            tgt_size = 1 if displacement < (1 << 7) else 2 if displacement < (1 << 15) else 4
    else:
        displacement = 0
        tgt_size = 0
    if meta.uses_imm or meta.uses_target:
        writer.write_u8(_SIZE_TO_TAG[imm_size] | (_SIZE_TO_TAG[tgt_size] << 2))
    for used, reg in ((meta.uses_rd, insn.rd), (meta.uses_rs1, insn.rs1),
                      (meta.uses_rs2, insn.rs2)):
        if used:
            writer.write_u8(reg)
    if imm_size:
        _write_signed(writer, insn.imm, imm_size)
    if tgt_size:
        _write_signed(writer, displacement, tgt_size)


def instruction_size(insn: Instruction, index: int) -> int:
    """Encoded size in bytes of ``insn`` at instruction index ``index``."""
    writer = ByteWriter()
    encode_instruction(insn, index, writer)
    return len(writer)


def decode_instruction(reader: ByteReader, index: int) -> Instruction:
    """Decode one instruction (at instruction index ``index``)."""
    meta = OP_BY_CODE[reader.read_u8()]
    imm_size = 0
    tgt_size = 0
    if meta.uses_imm or meta.uses_target:
        mode = reader.read_u8()
        imm_size = _TAG_TO_SIZE[mode & 0x3]
        tgt_size = _TAG_TO_SIZE[(mode >> 2) & 0x3]
    rd = reader.read_u8() if meta.uses_rd else None
    rs1 = reader.read_u8() if meta.uses_rs1 else None
    rs2 = reader.read_u8() if meta.uses_rs2 else None
    imm = _read_signed(reader, imm_size) if imm_size else None
    target = None
    if meta.uses_target:
        displacement = _read_signed(reader, tgt_size)
        if meta.is_branch:
            target = index + 1 + displacement
        else:
            target = displacement & ((1 << (8 * tgt_size)) - 1)
    if meta.uses_imm and imm is None:
        imm = 0
    return Instruction(op=meta.op, rd=rd, rs1=rs1, rs2=rs2, imm=imm, target=target)


def encode_function(function: Function) -> bytes:
    writer = ByteWriter()
    writer.write_uvarint(len(function.insns))
    for index, insn in enumerate(function.insns):
        encode_instruction(insn, index, writer)
    return writer.getvalue()


def decode_function(reader: ByteReader, name: str) -> Function:
    count = reader.read_uvarint()
    insns = [decode_instruction(reader, index) for index in range(count)]
    return Function(name=name, insns=insns)


def encode_program(program: Program) -> bytes:
    """Serialize a whole program to VM bytecode."""
    writer = ByteWriter()
    name_bytes = program.name.encode("utf-8")
    writer.write_uvarint(len(name_bytes))
    writer.write_bytes(name_bytes)
    writer.write_uvarint(program.entry)
    writer.write_uvarint(len(program.functions))
    for function in program.functions:
        fn_name = function.name.encode("utf-8")
        writer.write_uvarint(len(fn_name))
        writer.write_bytes(fn_name)
        writer.write_bytes(encode_function(function))
    return writer.getvalue()


def decode_program(data: bytes) -> Program:
    """Inverse of :func:`encode_program`."""
    reader = ByteReader(data)
    name = reader.read_bytes(reader.read_uvarint()).decode("utf-8")
    entry = reader.read_uvarint()
    count = reader.read_uvarint()
    functions: List[Function] = []
    for _ in range(count):
        fn_name = reader.read_bytes(reader.read_uvarint()).decode("utf-8")
        functions.append(decode_function(reader, fn_name))
    return Program(name=name, functions=functions, entry=entry)


def program_size(program: Program) -> int:
    """Total VM bytecode size in bytes (sum over instruction encodings)."""
    return sum(
        instruction_size(insn, iindex)
        for _, iindex, insn in program.iter_instructions()
    )


def function_byte_offsets(function: Function) -> Tuple[List[int], int]:
    """Byte offset of each instruction in the function's encoding.

    Returns ``(offsets, total_size)``.
    """
    offsets: List[int] = []
    position = 0
    for index, insn in enumerate(function.insns):
        offsets.append(position)
        position += instruction_size(insn, index)
    return offsets, position
