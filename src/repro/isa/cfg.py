"""Basic-block analysis.

The paper's dictionary construction requires that a candidate instruction
sequence be "contained within a single basic block" (Algorithm 1 step
3.a.iv) and that a dictionary entry hold at most one branch, always last.
This module computes the block partition those rules consult.

Leaders are: instruction 0, every branch/jump target, and every instruction
following a block terminator (branches, jumps, calls, returns, halt).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .opcodes import OP_TABLE
from .program import Function


@dataclass(frozen=True)
class BasicBlock:
    """Half-open instruction-index range ``[start, end)`` within a function."""

    start: int
    end: int

    def __len__(self) -> int:
        return self.end - self.start

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.end


def leaders(function: Function) -> List[int]:
    """Return the sorted list of basic-block leader indices."""
    if not function.insns:
        return []
    leader_set = {0}
    count = len(function.insns)
    for index, insn in enumerate(function.insns):
        meta = OP_TABLE[insn.op]
        if meta.is_branch:
            leader_set.add(insn.target)
        if meta.is_terminator and index + 1 < count:
            leader_set.add(index + 1)
    return sorted(leader_set)


def basic_blocks(function: Function) -> List[BasicBlock]:
    """Partition ``function`` into basic blocks."""
    starts = leaders(function)
    blocks: List[BasicBlock] = []
    for position, start in enumerate(starts):
        end = starts[position + 1] if position + 1 < len(starts) else len(function.insns)
        blocks.append(BasicBlock(start=start, end=end))
    return blocks


def block_id_map(function: Function) -> List[int]:
    """Return, per instruction index, the index of its basic block."""
    ids = [0] * len(function.insns)
    for block_index, block in enumerate(basic_blocks(function)):
        for index in range(block.start, block.end):
            ids[index] = block_index
    return ids
