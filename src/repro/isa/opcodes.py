"""Opcode table for the virtual instruction set.

The paper compresses programs compiled for the Omniware virtual machine
(OmniVM), a load/store RISC-style VM whose instructions have a small number
of well-defined fields.  OmniVM itself was never released, so this module
defines a stand-in with the same structural properties SSD relies on:

* a fixed opcode vocabulary with per-opcode operand signatures,
* register operands drawn from a 32-register file,
* immediates of varying byte widths, and
* pc-relative intra-function branch targets whose *encoded size*
  (1, 2 or 4 bytes) is an attribute of the instruction — the property the
  paper's size-not-value branch matching rule depends on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet

NUM_REGISTERS = 32

# Conventional register roles used by the workload compiler and interpreter.
REG_ZERO = 0     # always reads as zero; writes are ignored
REG_RV = 1       # return value
REG_SP = 29      # stack pointer
REG_FP = 30      # frame pointer
REG_RA = 31      # return address (written by CALL)


class Kind(enum.Enum):
    """Coarse instruction classes; drive operand signatures and CFG rules."""

    ALU_RR = "alu_rr"      # rd, rs1, rs2
    ALU_RI = "alu_ri"      # rd, rs1, imm
    UNARY = "unary"        # rd, rs1
    CONST = "const"        # rd, imm
    LOAD = "load"          # rd, rs1 (base), imm (offset)
    STORE = "store"        # rs2 (value), rs1 (base), imm (offset)
    BRANCH = "branch"      # rs1 [, rs2], target (conditional, intra-function)
    JUMP = "jump"          # target (unconditional, intra-function)
    CALL = "call"          # target (function index)
    CALL_INDIRECT = "call_indirect"  # rs1
    JUMP_INDIRECT = "jump_indirect"  # rs1
    RET = "ret"            # no operands
    MISC = "misc"          # nop / halt / trap


class Op(enum.Enum):
    """The opcode vocabulary (48 opcodes)."""

    # Three-register ALU.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIVS = "divs"
    REMS = "rems"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    SLT = "slt"
    SLTU = "sltu"
    # Register-immediate ALU.
    ADDI = "addi"
    MULI = "muli"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SHLI = "shli"
    SHRI = "shri"
    SARI = "sari"
    SLTI = "slti"
    # Unary register ops.
    MOV = "mov"
    NEG = "neg"
    NOT = "not"
    # Constant load.
    LI = "li"
    # Memory.
    LB = "lb"
    LBU = "lbu"
    LH = "lh"
    LHU = "lhu"
    LW = "lw"
    SB = "sb"
    SH = "sh"
    SW = "sw"
    # Conditional branches.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    BEQZ = "beqz"
    BNEZ = "bnez"
    # Control transfer.
    JMP = "jmp"
    CALL = "call"
    CALLR = "callr"
    JR = "jr"
    RET = "ret"
    # Misc.
    NOP = "nop"
    HALT = "halt"
    TRAP = "trap"


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    op: "Op"
    kind: Kind
    code: int  # stable numeric encoding (index in the table)
    mnemonic: str

    @cached_property
    def uses_rd(self) -> bool:
        return self.kind in (Kind.ALU_RR, Kind.ALU_RI, Kind.UNARY, Kind.CONST, Kind.LOAD)

    @cached_property
    def uses_rs1(self) -> bool:
        return self.kind in (
            Kind.ALU_RR,
            Kind.ALU_RI,
            Kind.UNARY,
            Kind.LOAD,
            Kind.STORE,
            Kind.BRANCH,
            Kind.CALL_INDIRECT,
            Kind.JUMP_INDIRECT,
        )

    @cached_property
    def uses_rs2(self) -> bool:
        if self.kind is Kind.STORE:
            return True
        if self.kind is Kind.ALU_RR:
            return True
        if self.kind is Kind.BRANCH:
            return self.op not in (Op.BEQZ, Op.BNEZ)
        return False

    @cached_property
    def uses_imm(self) -> bool:
        if self.kind in (Kind.ALU_RI, Kind.CONST, Kind.LOAD, Kind.STORE):
            return True
        return self.op is Op.TRAP

    @cached_property
    def uses_target(self) -> bool:
        return self.kind in (Kind.BRANCH, Kind.JUMP, Kind.CALL)

    @cached_property
    def is_branch(self) -> bool:
        """True for instructions carrying an intra-function pc-relative target."""
        return self.kind in (Kind.BRANCH, Kind.JUMP)

    @cached_property
    def is_call(self) -> bool:
        return self.kind is Kind.CALL

    @cached_property
    def is_terminator(self) -> bool:
        """True if the instruction ends a basic block.

        Calls terminate blocks too: the paper requires that a dictionary
        entry contain at most one control transfer and only as its last
        instruction, and treating calls as terminators enforces that
        uniformly.
        """
        return self.kind in (
            Kind.BRANCH,
            Kind.JUMP,
            Kind.CALL,
            Kind.CALL_INDIRECT,
            Kind.JUMP_INDIRECT,
            Kind.RET,
        ) or self.op is Op.HALT

    @cached_property
    def falls_through(self) -> bool:
        """True if control may continue to the next instruction."""
        return self.kind not in (Kind.JUMP, Kind.JUMP_INDIRECT, Kind.RET) and self.op is not Op.HALT


_KIND_OF: Dict[Op, Kind] = {
    Op.ADD: Kind.ALU_RR, Op.SUB: Kind.ALU_RR, Op.MUL: Kind.ALU_RR,
    Op.DIVS: Kind.ALU_RR, Op.REMS: Kind.ALU_RR, Op.AND: Kind.ALU_RR,
    Op.OR: Kind.ALU_RR, Op.XOR: Kind.ALU_RR, Op.SHL: Kind.ALU_RR,
    Op.SHR: Kind.ALU_RR, Op.SAR: Kind.ALU_RR, Op.SLT: Kind.ALU_RR,
    Op.SLTU: Kind.ALU_RR,
    Op.ADDI: Kind.ALU_RI, Op.MULI: Kind.ALU_RI, Op.ANDI: Kind.ALU_RI,
    Op.ORI: Kind.ALU_RI, Op.XORI: Kind.ALU_RI, Op.SHLI: Kind.ALU_RI,
    Op.SHRI: Kind.ALU_RI, Op.SARI: Kind.ALU_RI, Op.SLTI: Kind.ALU_RI,
    Op.MOV: Kind.UNARY, Op.NEG: Kind.UNARY, Op.NOT: Kind.UNARY,
    Op.LI: Kind.CONST,
    Op.LB: Kind.LOAD, Op.LBU: Kind.LOAD, Op.LH: Kind.LOAD,
    Op.LHU: Kind.LOAD, Op.LW: Kind.LOAD,
    Op.SB: Kind.STORE, Op.SH: Kind.STORE, Op.SW: Kind.STORE,
    Op.BEQ: Kind.BRANCH, Op.BNE: Kind.BRANCH, Op.BLT: Kind.BRANCH,
    Op.BGE: Kind.BRANCH, Op.BLTU: Kind.BRANCH, Op.BGEU: Kind.BRANCH,
    Op.BEQZ: Kind.BRANCH, Op.BNEZ: Kind.BRANCH,
    Op.JMP: Kind.JUMP, Op.CALL: Kind.CALL, Op.CALLR: Kind.CALL_INDIRECT,
    Op.JR: Kind.JUMP_INDIRECT, Op.RET: Kind.RET,
    Op.NOP: Kind.MISC, Op.HALT: Kind.MISC, Op.TRAP: Kind.MISC,
}

#: Opcode metadata indexed by Op; iteration order gives stable numeric codes.
OP_TABLE: Dict[Op, OpInfo] = {
    op: OpInfo(op=op, kind=_KIND_OF[op], code=index, mnemonic=op.value)
    for index, op in enumerate(Op)
}

# Prime every cached flag at import: the flags are hot in dictionary
# construction and JIT translation, and priming keeps first-access cost out
# of measured phases (and out of forked worker processes).
for _info in OP_TABLE.values():
    (_info.uses_rd, _info.uses_rs1, _info.uses_rs2, _info.uses_imm,
     _info.uses_target, _info.is_branch, _info.is_call, _info.is_terminator,
     _info.falls_through)
del _info

# Pin each member's OpInfo onto the member itself: `info()` is the hottest
# call in decompression, and an attribute hop skips the enum's custom
# __hash__ that a dict lookup would pay per call.
for _op, _opinfo in OP_TABLE.items():
    _op._op_info = _opinfo
del _op, _opinfo

#: Reverse lookup: numeric code -> OpInfo.
OP_BY_CODE: Dict[int, OpInfo] = {info.code: info for info in OP_TABLE.values()}

#: Reverse lookup: mnemonic -> OpInfo.
OP_BY_MNEMONIC: Dict[str, OpInfo] = {info.mnemonic: info for info in OP_TABLE.values()}

#: Opcodes that compare two registers and branch.
BRANCH_OPS: FrozenSet[Op] = frozenset(
    op for op, info in OP_TABLE.items() if info.kind is Kind.BRANCH
)


def info(op: Op) -> OpInfo:
    """Return the :class:`OpInfo` for ``op``."""
    try:
        return op._op_info
    except AttributeError:
        # Anything that is not an Op member keeps the dict lookup's
        # KeyError behavior.
        return OP_TABLE[op]
