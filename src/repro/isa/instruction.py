"""The :class:`Instruction` value type and the paper's matching rule.

Two ideas from the paper live here:

1. Instructions are *structured* values with named fields (opcode,
   registers, immediate, branch target) — the non-byte-aligned quantities
   split-stream methods operate on (paper Figure 1).

2. The match key (section 2.1): when comparing instructions for dictionary
   construction, two branch instructions match when their pc-relative
   target fields are "equal in size" while every other field is exactly
   equal.  :meth:`Instruction.match_key` implements exactly that rule; the
   Table 1 statistics, Algorithm 1, and BRISC pattern inference all share
   it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .opcodes import NUM_REGISTERS, Kind, Op, OpInfo, info

#: Byte widths an encoded pc-relative target may occupy.
TARGET_SIZES = (1, 2, 4)

#: Upper bound on native bytes one VM instruction may lower to (the widest
#: lowering in ``repro.vm.native`` is 9 bytes; a vm test pins this).  The
#: target-size classes below are conservative under this expansion so that
#: the copy phase (Algorithm 3) can always patch a *native* byte
#: displacement into a hole whose size class was chosen from the VM
#: instruction-unit displacement.
NATIVE_EXPANSION_BOUND = 9

#: Instruction-unit displacement limits per size class: |d| * 9 must fit
#: the signed byte/halfword range.
_CLASS1_LIMIT = 127 // NATIVE_EXPANSION_BOUND          # 14
_CLASS2_LIMIT = 32767 // NATIVE_EXPANSION_BOUND        # 3640


def target_size_class(displacement: int) -> int:
    """Return the encoded byte size (1, 2 or 4) of a pc-relative displacement.

    Displacements are measured in instructions.  Classes are conservative:
    a class-1 displacement is guaranteed to fit a signed byte even after
    every intervening instruction expands to its largest possible native
    form (see ``NATIVE_EXPANSION_BOUND``).
    """
    if -_CLASS1_LIMIT <= displacement <= _CLASS1_LIMIT:
        return 1
    if -_CLASS2_LIMIT <= displacement <= _CLASS2_LIMIT:
        return 2
    return 4


def immediate_size_class(value: int) -> int:
    """Return the encoded byte size (1, 2 or 4) of an immediate field."""
    if -(1 << 7) <= value < (1 << 7):
        return 1
    if -(1 << 15) <= value < (1 << 15):
        return 2
    return 4


@dataclass(frozen=True, slots=True)
class Instruction:
    """One virtual-machine instruction.

    ``target`` is an *instruction index* within the enclosing function for
    branches and jumps, and a *function index* within the program for
    calls.  Fields an opcode does not use must be ``None``; the constructor
    enforces this so malformed instructions fail fast.
    """

    op: Op
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    target: Optional[int] = None

    def __post_init__(self) -> None:
        # Branch-free field checks: this constructor runs once per decoded
        # base entry on the hostile-input boundary, so it stays cheap but
        # never skips validation.
        meta = info(self.op)
        if ((self.rd is not None) is not meta.uses_rd
                or (self.rs1 is not None) is not meta.uses_rs1
                or (self.rs2 is not None) is not meta.uses_rs2
                or (self.imm is not None) is not meta.uses_imm
                or (self.target is not None) is not meta.uses_target):
            self._raise_field_mismatch(meta)
        for name, value in (("rd", self.rd), ("rs1", self.rs1), ("rs2", self.rs2)):
            if value is not None and not 0 <= value < NUM_REGISTERS:
                raise ValueError(f"{self.op.value}: register {name}={value} out of range")

    def _raise_field_mismatch(self, meta: OpInfo) -> None:
        for name, used, value in (
            ("rd", meta.uses_rd, self.rd),
            ("rs1", meta.uses_rs1, self.rs1),
            ("rs2", meta.uses_rs2, self.rs2),
            ("imm", meta.uses_imm, self.imm),
            ("target", meta.uses_target, self.target),
        ):
            if used and value is None:
                raise ValueError(f"{self.op.value}: missing required field {name}")
            if not used and value is not None:
                raise ValueError(f"{self.op.value}: unexpected field {name}={value}")
        raise AssertionError("field mismatch flagged but not found")

    @property
    def meta(self) -> OpInfo:
        return info(self.op)

    @property
    def is_branch(self) -> bool:
        """True for intra-function control transfers (branches and jumps)."""
        return self.meta.is_branch

    @property
    def is_call(self) -> bool:
        return self.meta.is_call

    @property
    def is_terminator(self) -> bool:
        return self.meta.is_terminator

    def match_key(self, target_size: Optional[int] = None) -> Tuple:
        """Key under the paper's matching rule.

        For branch/jump instructions the pc-relative target *value* is
        replaced by its encoded *size* in bytes, which the caller computes
        from the instruction's position (see
        :func:`repro.isa.program.Function.target_sizes`).  Calls are
        likewise matched by target size: their targets are emitted through
        the item stream's relocation machinery just like forward branches
        (Algorithm 3 step 2.e).  All other fields must match exactly.
        """
        if self.is_branch or self.is_call:
            if target_size not in TARGET_SIZES:
                raise ValueError(
                    f"{self.op.value}: branch match key needs a target size in "
                    f"{TARGET_SIZES}, got {target_size!r}"
                )
            return (self.op, self.rd, self.rs1, self.rs2, self.imm, "sz", target_size)
        if target_size is not None:
            raise ValueError(f"{self.op.value}: target size given for non-branch")
        return (self.op, self.rd, self.rs1, self.rs2, self.imm, None, None)

    def replace_target(self, new_target: int) -> "Instruction":
        """Return a copy with a different branch/call target.

        Every field but the target is taken from an already-validated
        instruction, so the copy skips ``__post_init__`` — this runs once
        per branch/call item in the decompress hot path.
        """
        meta = info(self.op)
        if not (meta.is_branch or meta.is_call):
            raise ValueError(f"{self.op.value}: has no target to replace")
        if new_target is None:
            raise ValueError(f"{self.op.value}: missing required field target")
        clone = object.__new__(Instruction)
        set_field = object.__setattr__
        set_field(clone, "op", self.op)
        set_field(clone, "rd", self.rd)
        set_field(clone, "rs1", self.rs1)
        set_field(clone, "rs2", self.rs2)
        set_field(clone, "imm", self.imm)
        set_field(clone, "target", new_target)
        return clone

    def render(self) -> str:
        """Human-readable assembly-like rendering (no label resolution)."""
        meta = self.meta
        parts = [meta.mnemonic]
        operands = []
        if meta.kind is Kind.STORE:
            operands.append(f"r{self.rs2}")
            operands.append(f"{self.imm}(r{self.rs1})")
        elif meta.kind is Kind.LOAD:
            operands.append(f"r{self.rd}")
            operands.append(f"{self.imm}(r{self.rs1})")
        else:
            if meta.uses_rd:
                operands.append(f"r{self.rd}")
            if meta.uses_rs1:
                operands.append(f"r{self.rs1}")
            if meta.uses_rs2:
                operands.append(f"r{self.rs2}")
            if meta.uses_imm:
                operands.append(str(self.imm))
            if meta.uses_target:
                operands.append(f"@{self.target}")
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.render()
