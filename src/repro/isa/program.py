"""Program and function containers.

A :class:`Program` is a list of :class:`Function` objects plus an entry
point.  Branch targets are instruction indices within their function, and
call targets are function indices — the same intra-function / inter-function
split the paper uses (intra-function targets travel as pc-relative offsets
in the SSD item stream; call targets go through relocation items).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .instruction import Instruction, target_size_class
from .opcodes import OP_TABLE, Op


@dataclass
class Function:
    """A named sequence of instructions."""

    name: str
    insns: List[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.insns)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.insns)

    def target_sizes(self) -> List[Optional[int]]:
        """Encoded byte size of each instruction's pc-relative target.

        Returns a list parallel to ``insns``: ``None`` for instructions
        without a target, otherwise 1, 2 or 4.  Branch displacement is
        measured from the *following* instruction, as in most pc-relative
        encodings.  Call target sizes depend on the callee index width.
        """
        sizes: List[Optional[int]] = []
        append = sizes.append
        for index, insn in enumerate(self.insns):
            meta = OP_TABLE[insn.op]
            if meta.is_branch:
                append(target_size_class(insn.target - (index + 1)))
            elif meta.is_call:
                append(1 if insn.target < (1 << 8) else
                       2 if insn.target < (1 << 16) else 4)
            else:
                append(None)
        return sizes

    def match_keys(self) -> List[Tuple]:
        """Match key (paper section 2.1 rule) for every instruction."""
        return self.keys_and_sizes()[0]

    def keys_and_sizes(self) -> Tuple[List[Tuple], List[Optional[int]]]:
        """Match keys and target sizes in one pass (the compressor's pass 0).

        ``target_sizes`` yields ``None`` exactly for instructions without a
        target, so ``match_key(size)`` handles every case: branch/call keys
        embed the size, all other keys ignore the ``None``.
        """
        sizes = self.target_sizes()
        keys = [insn.match_key(size) for insn, size in zip(self.insns, sizes)]
        return keys, sizes

    def validate_targets(self) -> None:
        """Raise ``ValueError`` on out-of-range intra-function targets."""
        for index, insn in enumerate(self.insns):
            if insn.is_branch and not 0 <= insn.target < len(self.insns):
                raise ValueError(
                    f"{self.name}[{index}]: branch target {insn.target} outside "
                    f"function of {len(self.insns)} instructions"
                )


@dataclass
class Program:
    """A whole program: functions plus an entry function index."""

    name: str
    functions: List[Function] = field(default_factory=list)
    entry: int = 0

    def __post_init__(self) -> None:
        if self.functions and not 0 <= self.entry < len(self.functions):
            raise ValueError(f"entry index {self.entry} out of range")

    @property
    def instruction_count(self) -> int:
        return sum(len(fn) for fn in self.functions)

    def function_named(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r} in program {self.name!r}")

    def function_index(self, name: str) -> int:
        for index, fn in enumerate(self.functions):
            if fn.name == name:
                return index
        raise KeyError(f"no function named {name!r} in program {self.name!r}")

    def iter_instructions(self) -> Iterator[Tuple[int, int, Instruction]]:
        """Yield ``(function_index, instruction_index, instruction)``."""
        for findex, fn in enumerate(self.functions):
            for iindex, insn in enumerate(fn.insns):
                yield findex, iindex, insn

    def match_keys(self) -> List[Tuple]:
        """Match keys of every instruction, program order."""
        keys: List[Tuple] = []
        for fn in self.functions:
            keys.extend(fn.match_keys())
        return keys

    def opcode_histogram(self) -> Dict[Op, int]:
        histogram: Dict[Op, int] = {}
        for _, _, insn in self.iter_instructions():
            histogram[insn.op] = histogram.get(insn.op, 0) + 1
        return histogram


def concatenate(programs: Sequence[Program], name: str = "corpus") -> Program:
    """Concatenate programs into one (used for BRISC corpus training).

    Call targets are re-based so they keep pointing at the right function.
    """
    functions: List[Function] = []
    for program in programs:
        base = len(functions)
        for fn in program.functions:
            rebased = [
                insn.replace_target(insn.target + base) if insn.is_call else insn
                for insn in fn.insns
            ]
            functions.append(Function(name=f"{program.name}.{fn.name}", insns=rebased))
    return Program(name=name, functions=functions, entry=0)
