"""Benchmark: regenerate Table 1 (instruction redundancy)."""

from repro.analysis import measure_redundancy
from repro.experiments import table1


def test_table1_full_exhibit(benchmark, context):
    """Regenerates the complete Table 1 and checks its headline shape."""
    out = benchmark.pedantic(lambda: table1.run(context), rounds=1, iterations=1)
    assert "word97" in out and "compress" in out


def test_table1_redundancy_shape(benchmark, context):
    """Large programs re-use instructions more than small ones (the
    observation SSD is built on)."""

    def measure():
        return {name: measure_redundancy(context.program(name),
                                         x86_bytes=context.x86_size(name))
                for name in ("word97", "go", "compress")}

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert stats["word97"].avg_reuse > stats["go"].avg_reuse > stats["compress"].avg_reuse
    # Paper: every program re-uses instructions at least ~2.4x on average.
    assert stats["compress"].avg_reuse > 1.3


def test_table1_single_benchmark_cost(benchmark, context):
    """Per-benchmark redundancy measurement cost (tight loop)."""
    program = context.program("xlisp")
    benchmark(measure_redundancy, program, x86_bytes=context.x86_size("xlisp"))
