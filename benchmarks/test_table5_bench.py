"""Benchmark: regenerate Table 5 (compression ratios + overhead split)."""

from repro.analysis import measure_overhead, measure_sizes
from repro.core import compress
from repro.experiments import table5


def test_table5_full_exhibit(benchmark, context):
    """The complete Table 5 (sizes + modelled overheads, with BRISC)."""
    out = benchmark.pedantic(
        lambda: table5.run(context, names=["go", "xlisp", "compress"]),
        rounds=1, iterations=1)
    assert "ssd(ours)" in out


def test_table5_ssd_beats_brisc_on_large_programs(benchmark, context):
    """Paper's headline: SSD < BRISC for every non-tiny benchmark.

    At the reduced benchmark scale only the biggest benchmarks stay above
    the ~30 KB threshold where the paper says SSD's embedded dictionary
    pays off, so assert on those (the crossover itself is paper-faithful:
    BRISC wins on tiny inputs, as in the paper's ``compress`` row).
    """

    def measure():
        results = {}
        for name in ("gcc", "vortex"):
            report = measure_sizes(
                context.program(name),
                brisc_dictionary=context.brisc_dictionary(exclude=name),
                x86_bytes=context.x86_size(name))
            results[name] = (report.ssd_ratio, report.brisc_ratio)
        return results

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, (ssd, brisc) in ratios.items():
        assert ssd < brisc, f"{name}: SSD {ssd:.3f} should beat BRISC {brisc:.3f}"


def test_table5_overhead_split_shape(benchmark, context):
    """Decompression overhead is a small slice of total overhead."""

    def measure():
        name = "go"
        return measure_overhead(context.program(name), fuel=context.fuel,
                                result=context.run(name),
                                compressed_data=context.ssd(name).data)

    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert report.jit_overhead_pct < report.quality_overhead_pct
    assert 0 <= report.total_overhead_pct < 40


def test_ssd_compression_speed(benchmark, context):
    """Raw compressor throughput on one mid-size benchmark."""
    program = context.program("xlisp")
    result = benchmark(compress, program)
    assert result.size > 0
