"""Benchmark: the ablation experiments (design-choice checks)."""

from repro.core import compress
from repro.experiments import ablations


def test_branch_target_ablation(benchmark, context):
    """Paper section 2.1: pc-relative targets in items beat absolute
    targets in dictionary entries (~6.2% on their corpus)."""

    def measure():
        program = context.program("go")
        relative = context.ssd("go").size
        absolute = compress(program, branch_targets="absolute").size
        return relative, absolute

    relative, absolute = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert relative < absolute


def test_base_codec_ablation(benchmark, context):
    """Paper section 2.2.1: LZ over concatenated groups beats delta coding."""

    def measure():
        program = context.program("go")
        lz_size = context.ssd("go").size
        delta_size = compress(program, codec="delta").size
        return lz_size, delta_size

    lz_size, delta_size = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert lz_size < delta_size


def test_sequence_length_ablation(benchmark, context):
    """Longer sequence entries help up to the paper's chosen cap of 4."""

    def measure():
        program = context.program("go")
        return {max_len: compress(program, max_len=max_len).size
                for max_len in (1, 2, 4)}

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert sizes[4] < sizes[2] < sizes[1]


def test_buffer_policy_ablation(benchmark, context):
    """The paper's hybrid policy should not lose to pure round-robin."""

    out = benchmark.pedantic(
        lambda: ablations.buffer_policy_ablation(context, ratios=(0.3,)),
        rounds=1, iterations=1)
    assert "paper hybrid" in out
