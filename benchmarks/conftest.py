"""Shared fixtures for the benchmark harness.

Benchmarks regenerate the paper's exhibits at a reduced scale (the full
paper-scale run is driven by ``ssd-repro <exhibit> --scale 1.0``; its
output is recorded in EXPERIMENTS.md).  One session-scoped context shares
the synthesized programs across benchmarks.
"""

import pytest

from repro.experiments.common import ExperimentContext

#: benchmark-suite scale; chosen so a full `pytest benchmarks/` run stays
#: in the minutes range while preserving every exhibit's shape.
BENCH_SCALE = 0.1


@pytest.fixture(scope="session")
def context():
    return ExperimentContext(scale=BENCH_SCALE, train_scale=0.08)
