"""Benchmark: delta-update wire cost across corpus version pairs.

Guards the ``repro.delta`` acceptance target: for a seeded maintenance
release of every corpus benchmark, the ``base -> target`` patch must be
a small fraction of the full container a delta-less fleet would pull.
Every patch is applied and byte-verified before its size counts.  The
per-pair sizes and the median ratio land in ``BENCH_delta.json``;
``check_regression.py --delta`` gates the median at 30%.
"""

import hashlib
import json
import statistics
import time
from pathlib import Path

from repro.core import compress
from repro.delta import apply_patch, make_patch
from repro.workloads import clear_cache
from repro.workloads.versions import version_pairs

HERE = Path(__file__).resolve().parent
RESULTS_PATH = HERE / "BENCH_delta.json"

PAIR_SCALE = 0.1
PAIR_SEED = 0


def _record(entry: dict) -> None:
    existing = (json.loads(RESULTS_PATH.read_text())
                if RESULTS_PATH.exists() else [])
    existing.append(entry)
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def test_update_patch_wire_cost(benchmark):
    """make_patch/apply_patch over every corpus version pair, verified."""

    def measure():
        pairs = []
        make_s = 0.0
        apply_s = 0.0
        for name, old_program, new_program in version_pairs(
                scale=PAIR_SCALE, seed=PAIR_SEED):
            old = compress(old_program).data
            new = compress(new_program).data
            started = time.perf_counter()
            patch = make_patch(old, new)
            make_s += time.perf_counter() - started
            started = time.perf_counter()
            rebuilt = apply_patch(old, patch)
            apply_s += time.perf_counter() - started
            assert rebuilt == new
            assert hashlib.sha256(rebuilt).digest() == \
                hashlib.sha256(new).digest()
            pairs.append({"benchmark_name": name,
                          "full_bytes": len(new),
                          "patch_bytes": len(patch),
                          "ratio": round(len(patch) / len(new), 4)})
        return pairs, make_s, apply_s

    pairs, make_s, apply_s = benchmark.pedantic(measure, rounds=1,
                                                iterations=1)
    median_ratio = statistics.median(entry["ratio"] for entry in pairs)
    _record({
        "benchmark": "delta_update",
        "scale": PAIR_SCALE,
        "seed": PAIR_SEED,
        "pairs": pairs,
        "median_ratio": round(median_ratio, 4),
        "make_s": round(make_s, 3),
        "apply_s": round(apply_s, 3),
    })
    # The acceptance gate proper runs in check_regression.py --delta;
    # asserting here too keeps a plain `pytest benchmarks/` honest.
    assert median_ratio <= 0.30, f"median update ratio {median_ratio:.1%}"
    assert all(entry["patch_bytes"] > 0 for entry in pairs)
    clear_cache()
