"""Benchmark: optimized kernels and parallel pipeline scaling.

Guards this repo's perf work rather than a paper exhibit:

* the rewritten serial kernels (packed-key n-gram counting, slice-based
  LZ77 matching, hoisted copy-phase loop) must beat the recorded seed
  baseline (``BENCH_baseline.json``) by >= 1.3x on full-pipeline compress;
* ``compress(..., jobs=k)`` must be byte-identical to serial, and on
  machines with >= 4 cores ``jobs=4`` must clear 2x over the seed serial
  baseline;
* micro-benchmarks keep the kernel/legacy comparison visible (the legacy
  reference implementations live here, frozen from the seed).

Results are appended to ``BENCH_pipeline_scaling.json`` for inspection.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core import compress
from repro.core.dictionary import _count_ngrams
from repro.lz import lz77

HERE = Path(__file__).resolve().parent
BASELINE = json.loads((HERE / "BENCH_baseline.json").read_text())
RESULTS_PATH = HERE / "BENCH_pipeline_scaling.json"

#: The largest corpus program; matches the recorded baseline.
LARGEST = BASELINE["program"]


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _record(entry: dict) -> None:
    existing = (json.loads(RESULTS_PATH.read_text())
                if RESULTS_PATH.exists() else [])
    existing.append(entry)
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")


# ---------------------------------------------------------------------------
# Legacy reference kernels (frozen copies of the seed implementations).
# ---------------------------------------------------------------------------

def _legacy_count_ngrams(id_lists, max_len):
    """Seed n-gram counter: one tuple allocation per window."""
    counts = {}
    for ids in id_lists:
        n = len(ids)
        for start in range(n):
            top = min(max_len, n - start)
            for length in range(2, top + 1):
                window = tuple(ids[start:start + length])
                counts[window] = counts.get(window, 0) + 1
    return counts


def _legacy_lz_compress(data):
    """Seed LZ77 matcher: per-position candidate list copies, byte loops."""
    from repro.lz.varint import ByteWriter

    writer = ByteWriter()
    writer.write_uvarint(len(data))
    table = {}
    pos = 0
    literal_start = 0
    n = len(data)

    def flush_literals(end):
        if end > literal_start:
            writer.write_uvarint(0)
            writer.write_uvarint(end - literal_start)
            writer.write_bytes(data[literal_start:end])

    while pos + 4 <= n:
        key = lz77._hash4(data, pos)
        candidates = table.get(key)
        best_len = 0
        best_dist = 0
        if candidates:
            for cand in candidates[-32:][::-1]:
                dist = pos - cand
                if dist > (1 << 16):
                    continue
                length = 0
                limit = n - pos
                while length < limit and data[cand + length] == data[pos + length]:
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = dist
        if best_len >= 4:
            flush_literals(pos)
            writer.write_uvarint(best_len - 4 + 1)
            writer.write_uvarint(best_dist)
            end = pos + best_len
            step = 1 if best_len <= 32 else 4
            while pos < end and pos + 4 <= n:
                table.setdefault(lz77._hash4(data, pos), []).append(pos)
                pos += step
            pos = end
            literal_start = pos
        else:
            table.setdefault(key, []).append(pos)
            pos += 1
    flush_literals(n)
    return writer.getvalue()


# ---------------------------------------------------------------------------
# Full-pipeline guards against the recorded seed baseline.
# ---------------------------------------------------------------------------

def test_serial_kernels_beat_seed_baseline(context):
    """The tentpole claim: serial rewrites alone give >= 1.3x compress."""
    program = context.program(LARGEST)
    assert program.instruction_count == BASELINE["instructions"]
    # Best-of-5 to shrug off transient machine load.
    elapsed = min(_timed(lambda: compress(program)) for _ in range(5))
    speedup = BASELINE["compress_s"] / elapsed
    _record({"test": "serial_vs_seed", "compress_s": round(elapsed, 3),
             "seed_compress_s": BASELINE["compress_s"],
             "speedup": round(speedup, 2)})
    assert speedup >= 1.3, (
        f"serial compress {elapsed:.3f}s is only {speedup:.2f}x over the "
        f"seed baseline {BASELINE['compress_s']:.3f}s (need >= 1.3x)")


def test_parallel_output_byte_identical(context):
    program = context.program(LARGEST)
    serial = compress(program)
    for jobs in (2, 4):
        parallel = compress(program, jobs=jobs)
        assert parallel.data == serial.data, (
            f"jobs={jobs} output differs from serial")


def test_parallel_scaling_vs_seed_baseline(context):
    """jobs=4 >= 2x over the *seed* serial baseline (needs real cores)."""
    program = context.program(LARGEST)
    elapsed = min(_timed(lambda: compress(program, jobs=4)) for _ in range(2))
    speedup = BASELINE["compress_s"] / elapsed
    _record({"test": "jobs4_vs_seed", "compress_s": round(elapsed, 3),
             "seed_compress_s": BASELINE["compress_s"],
             "speedup": round(speedup, 2),
             "cpu_count": os.cpu_count()})
    if (os.cpu_count() or 1) < 4:
        pytest.skip(f"only {os.cpu_count()} CPU(s): process fan-out cannot "
                    f"scale here (measured {speedup:.2f}x)")
    assert speedup >= 2.0, (
        f"jobs=4 compress {elapsed:.3f}s is only {speedup:.2f}x over the "
        f"seed baseline {BASELINE['compress_s']:.3f}s (need >= 2x)")


# ---------------------------------------------------------------------------
# Kernel micro-benchmarks: new vs frozen legacy reference.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def ngram_input(context):
    from repro.core.dictionary import build_dictionary
    program = context.program(LARGEST)
    result = build_dictionary(program)
    key_bits = max(1, (len(result.base_entries) - 1).bit_length())
    # Recover per-function id lists the same way pass 0 does.
    interned = {entry.key: index
                for index, entry in enumerate(result.base_entries)}
    id_lists = []
    for fn in program.functions:
        keys, _ = fn.keys_and_sizes()
        id_lists.append([interned[key] for key in keys])
    return id_lists, key_bits


def test_ngram_kernel_packed(benchmark, ngram_input):
    id_lists, key_bits = ngram_input
    counts = benchmark(_count_ngrams, id_lists, 4, key_bits)
    assert counts


def test_ngram_kernel_legacy_reference(benchmark, ngram_input):
    id_lists, _ = ngram_input
    counts = benchmark(_legacy_count_ngrams, id_lists, 4)
    assert counts


def test_ngram_kernels_agree(ngram_input):
    """Packed counts must be the legacy tuple counts under a bijection."""
    id_lists, key_bits = ngram_input
    legacy = _legacy_count_ngrams(id_lists, 4)
    packed = _count_ngrams(id_lists, 4, key_bits)
    assert len(legacy) == len(packed)
    marks = [1 << (length * key_bits) for length in range(5)]
    for window, count in legacy.items():
        key = marks[len(window)]
        for offset, base_id in enumerate(window):
            key |= base_id << (offset * key_bits)
        assert packed[key] == count


@pytest.fixture(scope="module")
def lz_input(context):
    # The byte-oriented-baseline workload (analysis.ratios): a whole
    # program's VM encoding — redundant, match-rich bytes.
    from repro.analysis.ratios import encode_program
    return encode_program(context.program(LARGEST))


def test_lz77_kernel_new(benchmark, lz_input):
    out = benchmark(lz77.compress, lz_input)
    assert lz77.decompress(out) == lz_input


def test_lz77_kernel_legacy_reference(benchmark, lz_input):
    out = benchmark(_legacy_lz_compress, lz_input)
    assert out == lz77.compress(lz_input)  # output unchanged by the rewrite
