"""Benchmark: profile-guided layout + predictive prefetch vs plain LRU.

The flagship measurement for the `repro.profile` subsystem (docs/LAYOUT.md
§measurement): a phased Zipf trace (`repro.workloads.generate_trace`) at
word97 scale is replayed against `ssd serve` in two configurations —

* **baseline** — source-order container, plain LRU, no prefetch;
* **profiled** — plan-ordered container with hint sections
  (`compress(..., layout_plan=build_plan(...))`), markov prefetch
  (`ServerConfig(prefetch_depth=N)`) and ghost-list cache admission
  (`cache_admission=True`) —

across three scenarios: **cold_start** (first replay of a profiled
workload against an empty server), **phase_shift** (the working set
moves twice mid-trace), and **cache_thrash** (cache budget roughly one
phase's working set, so eviction pressure is constant).

Latency is reported from both ends: the client's wire round-trip, and
the server's own GET_FUNCTION reservoir (`stats()["latency"]`) — the
latter is the serving-latency contract because it excludes client-side
socket/scheduler jitter.  The reservoir holds the most recent
`RESERVOIR_SIZE` (2048) requests, which for this trace is the window
just after the final phase shift — exactly the period the profiled
configuration is supposed to win.

One ``serve_prefetch`` entry is appended to ``BENCH_serve.json``;
``check_regression.py --prefetch`` gates that the profiled configuration
beats baseline on server p99 and cache hit rate in the phase-shift
scenario.
"""

import json
import time
from pathlib import Path

from repro.core import compress
from repro.profile import AccessProfile, build_plan
from repro.serve import ServeClient, ServerConfig, serve_in_thread
from repro.serve.metrics import percentile
from repro.workloads import (
    TraceSpec,
    benchmark_program,
    clear_cache,
    generate_trace,
)

HERE = Path(__file__).resolve().parent
RESULTS_PATH = HERE / "BENCH_serve.json"

#: word97 scale — the ISSUE pins the scenario at full scale
SCALE = 1.0
CALLS_PER_PHASE = 500
PHASES = 3
PREFETCH_DEPTH = 8
#: cold-start scenario replays this prefix of the trace (the phase-1
#: feature-initialization sweep plus the first steady-state calls)
COLD_START_CALLS = 900
#: max successor edges shipped in the hint section; at full scale the
#: trace has ~6k transitions, so this keeps essentially all of them
HINT_EDGES = 8192


def _record(entry: dict) -> None:
    existing = (json.loads(RESULTS_PATH.read_text())
                if RESULTS_PATH.exists() else [])
    existing.append(entry)
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _replay(container, config, calls):
    """Drive one fresh server through ``calls``; return latencies+stats."""
    latencies = []
    with serve_in_thread(config=config) as handle:
        with ServeClient(*handle.address) as client:
            container_id, _, _ = client.put(container)
            for findex in calls:
                start = time.perf_counter()
                client.function(container_id, findex)
                latencies.append(time.perf_counter() - start)
            stats = client.stats()
    return latencies, stats


def _side(latencies, stats):
    """One configuration's recorded numbers for a scenario."""
    server = stats["latency"].get("GET_FUNCTION", {})
    admission = stats.get("cache_admission") or {}
    return {
        "client_p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "client_p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "server_p50_ms": round(server.get("p50_ms", 0.0), 3),
        "server_p99_ms": round(server.get("p99_ms", 0.0), 3),
        "cache_hit_rate": round(stats["cache"]["hit_rate"], 4),
        "prefetch_issued": stats["prefetch"]["issued"],
        "prefetch_hits": stats["prefetch"]["hits"],
        "admission_rejects": admission.get("rejects", 0),
        "decodes_total": stats["decodes_total"],
        # final cache occupancy; used to size the thrash budget and
        # stripped before recording
        "cache_bytes": stats["cache"]["current_bytes"],
    }


def test_prefetch_scenarios(benchmark):
    """Cold-start / phase-shift / cache-thrash, baseline vs profiled."""
    program = benchmark_program("word97", scale=SCALE)
    function_count = len(program.functions)
    trace = generate_trace(TraceSpec(function_count=function_count,
                                     calls_per_phase=CALLS_PER_PHASE,
                                     phases=PHASES))
    profile = AccessProfile.from_trace(
        trace, phase_boundaries=trace.phase_boundaries)
    plan = build_plan(profile, function_count, max_edges=HINT_EDGES)
    assert not plan.is_identity
    baseline_container = compress(program).data
    profiled_container = compress(program, layout_plan=plan).data

    def baseline_config(**overrides):
        return ServerConfig(request_timeout=60.0, **overrides)

    def profiled_config(**overrides):
        return ServerConfig(request_timeout=60.0,
                            prefetch_depth=PREFETCH_DEPTH,
                            cache_admission=True, **overrides)

    def run_pair(calls, **overrides):
        base = _replay(baseline_container, baseline_config(**overrides),
                       calls)
        prof = _replay(profiled_container, profiled_config(**overrides),
                       calls)
        return {"baseline": _side(*base), "profiled": _side(*prof)}

    def measure():
        scenarios = {}
        scenarios["cold_start"] = run_pair(trace[:COLD_START_CALLS])
        scenarios["phase_shift"] = run_pair(trace)
        # Budget ~ the reader plus a third of the decoded working set,
        # derived from the phase-shift baseline run (its cache ends up
        # holding the reader and every decoded body).
        warm_bytes = scenarios["phase_shift"]["baseline"]["cache_bytes"]
        thrash_budget = (len(baseline_container)
                         + (warm_bytes - len(baseline_container)) // 3)
        scenarios["cache_thrash"] = run_pair(
            trace, cache_bytes=thrash_budget)
        return scenarios, thrash_budget

    scenarios, thrash_budget = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    for scenario in scenarios.values():
        for side in scenario.values():
            side.pop("cache_bytes", None)

    _record({
        "benchmark": "serve_prefetch",
        "scale": SCALE,
        "functions": function_count,
        "trace_calls": len(trace),
        "phases": PHASES,
        "phase_boundaries": list(trace.phase_boundaries),
        "prefetch_depth": PREFETCH_DEPTH,
        "thrash_cache_bytes": thrash_budget,
        "scenarios": scenarios,
    })

    # The hint-seeded prefetcher must engage on a cold server.
    assert scenarios["cold_start"]["profiled"]["prefetch_hits"] > 0
    # The acceptance contract (also enforced by check_regression.py
    # --prefetch once the entry is recorded): profiled beats baseline on
    # serve p99 and cache hit rate across the phase shift.
    shift = scenarios["phase_shift"]
    assert (shift["profiled"]["server_p99_ms"]
            < shift["baseline"]["server_p99_ms"])
    assert (shift["profiled"]["cache_hit_rate"]
            > shift["baseline"]["cache_hit_rate"])
    # Under thrash, ghost-list admission must at least hold the line.
    thrash = scenarios["cache_thrash"]
    assert (thrash["profiled"]["cache_hit_rate"]
            >= thrash["baseline"]["cache_hit_rate"])
    clear_cache()
