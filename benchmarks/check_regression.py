#!/usr/bin/env python
"""Pipeline-throughput regression guard.

Measures full-pipeline ``repro.core.compress`` and ``decompress``
wall-clock on the largest corpus program, writes the numbers to
``benchmarks/BENCH_pipeline.json``, and exits non-zero if either
direction's throughput regressed more than ``--tolerance`` (default 20%)
against the recorded baseline in ``benchmarks/BENCH_baseline.json``.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py            # guard
    PYTHONPATH=src python benchmarks/check_regression.py --record   # re-baseline
    PYTHONPATH=src python benchmarks/check_regression.py --serve    # cluster gate
    PYTHONPATH=src python benchmarks/check_regression.py --skew     # skew gate
    PYTHONPATH=src python benchmarks/check_regression.py --delta    # update gate
    PYTHONPATH=src python benchmarks/check_regression.py --prefetch # layout gate

``--serve`` gates the cluster failover benchmark instead: it reads the
latest ``serve_cluster_failover`` entry from ``BENCH_serve.json``
(written by ``benchmarks/test_serve_bench.py``) and fails if losing one
shard cost more than ``--serve-degradation`` of healthy throughput —
the degraded/healthy ratio is machine-relative, so it gates graceful
degradation without a wall-clock baseline.

``--skew`` gates the traffic-skew benchmark: it reads the latest
``serve_skew`` entry from ``BENCH_serve.json`` (written by
``benchmarks/test_skew_bench.py``) and fails if Zipf-1.1 p99 latency
exceeded ``--skew-p99-ratio`` (default 2.0) times the uniform-traffic
p99, or if the hottest shard served more than ``--skew-load-ratio``
(default 1.5) times the mean per-shard load.  Both ratios are
machine-relative, so the gate needs no recorded baseline.

``--delta`` gates the delta-update wire cost: it reads the latest
``delta_update`` entry from ``BENCH_delta.json`` (written by
``benchmarks/test_delta_bench.py``) and fails if the median patch was
more than ``--delta-ratio`` (default 0.30) of a full container
transfer.  Sizes are machine-independent, so the gate needs no
recorded baseline.

``--prefetch`` gates the profile-guided layout benchmark: it reads the
latest ``serve_prefetch`` entry from ``BENCH_serve.json`` (written by
``benchmarks/test_prefetch_bench.py``) and fails unless the profiled
configuration (plan-ordered container + markov prefetch + ghost-list
admission) beat the plain-LRU/source-order baseline on the phase-shift
scenario: server-side GET_FUNCTION p99 within ``--prefetch-p99-ratio``
(default 1.0 — profiled must not be slower) and cache hit rate at least
``--prefetch-hit-gain`` higher (default 0.0).  Both comparisons happen
within one run, so the gate needs no recorded baseline.

Run it alongside the tier-1 suite when touching the compress or
decompress path.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "BENCH_baseline.json"
RESULT_PATH = HERE / "BENCH_pipeline.json"
SERVE_RESULTS_PATH = HERE / "BENCH_serve.json"
DELTA_RESULTS_PATH = HERE / "BENCH_delta.json"


def check_serve_cluster(max_degradation: float) -> int:
    """Gate the cluster failover benchmark's degraded/healthy ratio.

    Returns 0 when losing one shard kept at least
    ``1 - max_degradation`` of healthy requests/s; 1 on a regression or
    when the benchmark has not been run yet.
    """
    if not SERVE_RESULTS_PATH.exists():
        print(f"{SERVE_RESULTS_PATH.name} missing; "
              "run benchmarks/test_serve_bench.py first")
        return 1
    entries = [entry for entry
               in json.loads(SERVE_RESULTS_PATH.read_text())
               if entry.get("benchmark") == "serve_cluster_failover"]
    if not entries:
        print("no serve_cluster_failover entry recorded; "
              "run benchmarks/test_serve_bench.py first")
        return 1
    latest = entries[-1]
    healthy = latest["healthy_requests_per_s"]
    degraded = latest["one_shard_dead_requests_per_s"]
    ratio = degraded / healthy if healthy else 0.0
    floor = 1.0 - max_degradation
    verdict = "pass" if ratio >= floor else "regression"
    print(f"cluster failover: healthy {healthy:,.0f} req/s "
          f"(p99 {latest['healthy_p99_ms']}ms), one shard dead "
          f"{degraded:,.0f} req/s (p99 {latest['one_shard_dead_p99_ms']}ms)"
          f" -> {ratio:.2f}x retained, floor {floor:.2f}x -> {verdict}")
    return 0 if verdict == "pass" else 1


def check_skew(max_p99_ratio: float, max_load_ratio: float) -> int:
    """Gate the skew benchmark's Zipf/uniform p99 and shard-load split.

    Returns 0 when Zipf-1.1 tail latency stayed within
    ``max_p99_ratio`` of the uniform-traffic tail AND the hottest
    shard's served-request count stayed within ``max_load_ratio`` of
    the per-shard mean; 1 on a regression or when the benchmark has
    not been run yet.
    """
    if not SERVE_RESULTS_PATH.exists():
        print(f"{SERVE_RESULTS_PATH.name} missing; "
              "run benchmarks/test_skew_bench.py first")
        return 1
    entries = [entry for entry
               in json.loads(SERVE_RESULTS_PATH.read_text())
               if entry.get("benchmark") == "serve_skew"]
    if not entries:
        print("no serve_skew entry recorded; "
              "run benchmarks/test_skew_bench.py first")
        return 1
    latest = entries[-1]
    uniform_p99 = latest["uniform_p99_ms"]
    zipf_p99 = latest["zipf_p99_ms"]
    p99_ratio = zipf_p99 / uniform_p99 if uniform_p99 else float("inf")
    load_ratio = latest["max_over_mean_shard_load"]
    p99_ok = p99_ratio <= max_p99_ratio
    load_ok = load_ratio <= max_load_ratio
    verdict = "pass" if p99_ok and load_ok else "regression"
    print(f"traffic skew: uniform p99 {uniform_p99}ms, zipf p99 "
          f"{zipf_p99}ms -> {p99_ratio:.2f}x (ceiling {max_p99_ratio:.1f}x,"
          f" {'pass' if p99_ok else 'regression'}); hottest shard "
          f"{load_ratio:.2f}x mean load (ceiling {max_load_ratio:.1f}x, "
          f"{'pass' if load_ok else 'regression'}); cache "
          f"{latest['cache_hits']} hits / {latest['cache_misses']} misses"
          f" -> {verdict}")
    return 0 if verdict == "pass" else 1


def check_delta(max_median_ratio: float) -> int:
    """Gate the delta-update benchmark's median patch/full ratio.

    Returns 0 when the median update patch across the corpus version
    pairs stayed at or below ``max_median_ratio`` of a full transfer;
    1 on a regression or when the benchmark has not been run yet.
    """
    if not DELTA_RESULTS_PATH.exists():
        print(f"{DELTA_RESULTS_PATH.name} missing; "
              "run benchmarks/test_delta_bench.py first")
        return 1
    entries = [entry for entry
               in json.loads(DELTA_RESULTS_PATH.read_text())
               if entry.get("benchmark") == "delta_update"]
    if not entries:
        print("no delta_update entry recorded; "
              "run benchmarks/test_delta_bench.py first")
        return 1
    latest = entries[-1]
    median = latest["median_ratio"]
    verdict = "pass" if median <= max_median_ratio else "regression"
    worst = max(latest["pairs"], key=lambda pair: pair["ratio"])
    print(f"delta update: {len(latest['pairs'])} version pairs at scale "
          f"{latest['scale']}, median patch {median:.1%} of a full "
          f"transfer (worst {worst['benchmark_name']} {worst['ratio']:.1%}),"
          f" ceiling {max_median_ratio:.0%} -> {verdict}")
    return 0 if verdict == "pass" else 1


def check_prefetch(max_p99_ratio: float, min_hit_gain: float) -> int:
    """Gate the prefetch benchmark's phase-shift scenario.

    Returns 0 when the profiled configuration (plan-ordered container +
    markov prefetch + ghost-list admission) beat the plain-LRU baseline
    across the phase shift: server-side GET_FUNCTION p99 at or below
    ``max_p99_ratio`` times baseline's, AND cache hit rate at least
    ``min_hit_gain`` above baseline's.  Both comparisons are within one
    run on one machine, so the gate needs no recorded baseline.
    Returns 1 on a regression or when the benchmark has not been run.
    """
    if not SERVE_RESULTS_PATH.exists():
        print(f"{SERVE_RESULTS_PATH.name} missing; "
              "run benchmarks/test_prefetch_bench.py first")
        return 1
    entries = [entry for entry
               in json.loads(SERVE_RESULTS_PATH.read_text())
               if entry.get("benchmark") == "serve_prefetch"]
    if not entries:
        print("no serve_prefetch entry recorded; "
              "run benchmarks/test_prefetch_bench.py first")
        return 1
    latest = entries[-1]
    shift = latest["scenarios"]["phase_shift"]
    base_p99 = shift["baseline"]["server_p99_ms"]
    prof_p99 = shift["profiled"]["server_p99_ms"]
    base_hit = shift["baseline"]["cache_hit_rate"]
    prof_hit = shift["profiled"]["cache_hit_rate"]
    p99_ratio = prof_p99 / base_p99 if base_p99 else float("inf")
    hit_gain = prof_hit - base_hit
    p99_ok = p99_ratio <= max_p99_ratio
    hit_ok = hit_gain >= min_hit_gain
    verdict = "pass" if p99_ok and hit_ok else "regression"
    print(f"prefetch phase-shift: server p99 baseline {base_p99}ms, "
          f"profiled {prof_p99}ms -> {p99_ratio:.2f}x (ceiling "
          f"{max_p99_ratio:.2f}x, {'pass' if p99_ok else 'regression'}); "
          f"hit rate {base_hit:.3f} -> {prof_hit:.3f} "
          f"({hit_gain:+.3f}, floor {min_hit_gain:+.3f}, "
          f"{'pass' if hit_ok else 'regression'}); prefetch "
          f"{shift['profiled']['prefetch_hits']} hits / "
          f"{shift['profiled']['prefetch_issued']} issued -> {verdict}")
    return 0 if verdict == "pass" else 1


def measure(program_name: str, scale: float, rounds: int) -> dict:
    from repro.core import compress, decompress
    from repro.workloads import benchmark_program

    program = benchmark_program(program_name, scale=scale)
    compress_s = min(_timed(compress, program) for _ in range(rounds))
    container = compress(program)
    decompress_s = min(_timed(decompress, container.data) for _ in range(rounds))
    return {
        "program": program_name,
        "scale": scale,
        "instructions": program.instruction_count,
        "container_bytes": container.size,
        "compress_s": compress_s,
        "decompress_s": decompress_s,
    }


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--program", default=None,
                        help="corpus program (default: baseline's)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (default: baseline's)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds; best is kept (default 3)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional throughput loss (default 0.20)")
    parser.add_argument("--record", action="store_true",
                        help="rewrite BENCH_baseline.json from this run")
    parser.add_argument("--serve", action="store_true",
                        help="gate the cluster failover benchmark "
                             "(BENCH_serve.json) instead of the pipeline")
    parser.add_argument("--serve-degradation", type=float, default=0.6,
                        help="allowed fractional req/s loss with one "
                             "shard dead (default 0.6)")
    parser.add_argument("--skew", action="store_true",
                        help="gate the traffic-skew benchmark "
                             "(BENCH_serve.json) instead of the pipeline")
    parser.add_argument("--skew-p99-ratio", type=float, default=2.0,
                        help="allowed zipf/uniform p99 latency ratio "
                             "(default 2.0)")
    parser.add_argument("--skew-load-ratio", type=float, default=1.5,
                        help="allowed max/mean per-shard load ratio "
                             "(default 1.5)")
    parser.add_argument("--delta", action="store_true",
                        help="gate the delta-update wire-cost benchmark "
                             "(BENCH_delta.json) instead of the pipeline")
    parser.add_argument("--delta-ratio", type=float, default=0.30,
                        help="allowed median patch/full-transfer ratio "
                             "(default 0.30)")
    parser.add_argument("--prefetch", action="store_true",
                        help="gate the layout/prefetch benchmark "
                             "(BENCH_serve.json) instead of the pipeline")
    parser.add_argument("--prefetch-p99-ratio", type=float, default=1.0,
                        help="allowed profiled/baseline server p99 ratio "
                             "on the phase-shift scenario (default 1.0: "
                             "profiled must not be slower)")
    parser.add_argument("--prefetch-hit-gain", type=float, default=0.0,
                        help="required profiled-minus-baseline cache "
                             "hit-rate gain on the phase-shift scenario "
                             "(default 0.0: profiled must not be lower)")
    args = parser.parse_args(argv)

    if args.serve:
        return check_serve_cluster(args.serve_degradation)
    if args.skew:
        return check_skew(args.skew_p99_ratio, args.skew_load_ratio)
    if args.delta:
        return check_delta(args.delta_ratio)
    if args.prefetch:
        return check_prefetch(args.prefetch_p99_ratio,
                              args.prefetch_hit_gain)

    baseline = json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else {}
    program = args.program or baseline.get("program", "word97")
    scale = args.scale if args.scale is not None else baseline.get("scale", 0.1)

    result = measure(program, scale, args.rounds)
    throughput = result["instructions"] / result["compress_s"]
    result["compress_insns_per_s"] = round(throughput, 1)
    decode_throughput = result["instructions"] / result["decompress_s"]
    result["decompress_insns_per_s"] = round(decode_throughput, 1)

    if args.record:
        recorded = dict(result)
        recorded["note"] = "Recorded by check_regression.py --record; best of %d runs." % args.rounds
        BASELINE_PATH.write_text(json.dumps(recorded, indent=2) + "\n")
        print(f"recorded baseline: compress {result['compress_s']:.3f}s "
              f"({throughput:,.0f} insns/s), decompress "
              f"{result['decompress_s']:.3f}s ({decode_throughput:,.0f} "
              f"insns/s) -> {BASELINE_PATH.name}")

    comparable = (baseline.get("program") == program
                  and baseline.get("scale") == scale)
    floor = 1.0 - args.tolerance
    verdicts = []
    for direction, measured in (("compress", throughput),
                                ("decompress", decode_throughput)):
        key = f"{direction}_s"
        if not (comparable and baseline.get(key)):
            print(f"{direction}: {result[key]:.3f}s "
                  f"({measured:,.0f} insns/s); no comparable baseline")
            continue
        base_throughput = baseline["instructions"] / baseline[key]
        ratio = measured / base_throughput
        result[f"baseline_{key}"] = baseline[key]
        result[f"{direction}_throughput_vs_baseline"] = round(ratio, 3)
        verdicts.append(ratio >= floor)
        print(f"{direction}: {result[key]:.3f}s vs baseline "
              f"{baseline[key]:.3f}s ({ratio:.2f}x throughput, "
              f"tolerance {floor:.2f}x) -> "
              f"{'pass' if verdicts[-1] else 'regression'}")
    if not verdicts:
        verdict = "no-baseline"
    else:
        verdict = "pass" if all(verdicts) else "regression"

    # Back-compat alias: earlier consumers read the compress-only ratio
    # under this name.
    if "compress_throughput_vs_baseline" in result:
        result["throughput_vs_baseline"] = \
            result["compress_throughput_vs_baseline"]

    result["verdict"] = verdict
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {RESULT_PATH.name}")
    return 1 if verdict == "regression" else 0


if __name__ == "__main__":
    sys.exit(main())
