"""Benchmark: cluster behaviour under skewed (Zipf) request traffic.

Drives the same 3-shard cluster through two phases of identical volume
— container picks drawn uniformly, then from a Zipf-1.1 popularity
curve — with the router's response cache and hot-shard rebalancer
enabled.  The claim under test: popularity skew is absorbed at the
router (cache hits for hot content, vnode-weight shifts for hot
shards), so Zipf tail latency stays comparable to uniform and no shard
ends up with a runaway share of the backend load.

Requests/second, p50/p99 per phase, and the per-shard served-request
split are appended to ``BENCH_serve.json``;
``check_regression.py --skew`` gates the Zipf/uniform p99 ratio and
the max/mean shard-load ratio.
"""

import json
import random
import threading
import time
from pathlib import Path

from repro.core import compress
from repro.isa import assemble
from repro.serve import ClusterConfig, LocalCluster, RouterConfig
from repro.serve.metrics import percentile
from repro.workloads import zipf_weights

HERE = Path(__file__).resolve().parent
RESULTS_PATH = HERE / "BENCH_serve.json"

CLIENTS = 6
REQUESTS_PER_CLIENT = 60
CONTAINERS = 16
ZIPF_EXPONENT = 1.1

ASM_TEMPLATE = """
func main
    li r2, {value}
    call helper
    trap 1
    ret
end
func helper
    add r1, r2, r2
    ret
end
"""


def _record(entry: dict) -> None:
    existing = (json.loads(RESULTS_PATH.read_text())
                if RESULTS_PATH.exists() else [])
    existing.append(entry)
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _drive(cluster, container_ids, function_count, pick_container):
    """Hammer the router from CLIENTS threads; each request targets
    ``pick_container(rng)`` so the two phases differ only in the
    popularity curve."""
    latencies = []
    lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS)
    errors = []

    def worker(tid: int) -> None:
        rng = random.Random(1000 + tid)
        try:
            with cluster.client(retries=4) as client:
                barrier.wait(timeout=10)
                local = []
                for _ in range(REQUESTS_PER_CLIENT):
                    cid = container_ids[pick_container(rng)]
                    findex = rng.randrange(function_count)
                    start = time.perf_counter()
                    client.function(cid, findex)
                    local.append(time.perf_counter() - start)
                with lock:
                    latencies.extend(local)
        except Exception as exc:  # noqa: BLE001
            errors.append(f"{type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(tid,))
               for tid in range(CLIENTS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return latencies, elapsed


def test_uniform_vs_zipf_skew(benchmark):
    """Uniform then Zipf-1.1 traffic over 16 containers through a
    router with response cache + rebalancer on.  Records both phases
    plus the final per-shard load split for the ``--skew`` gate."""
    containers = [compress(assemble(ASM_TEMPLATE.format(value=v + 1))).data
                  for v in range(CONTAINERS)]
    function_count = 2
    zipf = zipf_weights(CONTAINERS, ZIPF_EXPONENT)

    def measure():
        config = ClusterConfig(
            shards=3, replication=2,
            router=RouterConfig(probe_interval=0.1, probe_timeout=0.5,
                                breaker_cooldown=0.25, seed=0,
                                cache_bytes=1 << 20,
                                rebalance_interval=0.2))
        with LocalCluster(config) as cluster:
            with cluster.client() as warm:
                ids = [warm.put(blob)[0] for blob in containers]
            uniform = _drive(cluster, ids, function_count,
                             lambda rng: rng.randrange(CONTAINERS))
            skewed = _drive(
                cluster, ids, function_count,
                lambda rng: rng.choices(range(CONTAINERS), zipf)[0])
            with cluster.client() as probe:
                stats = probe.stats()
        return uniform, skewed, stats

    uniform, skewed, stats = benchmark.pedantic(measure, rounds=1,
                                                iterations=1)
    total = CLIENTS * REQUESTS_PER_CLIENT
    entry = {"benchmark": "serve_skew", "clients": CLIENTS,
             "containers": CONTAINERS, "zipf_exponent": ZIPF_EXPONENT,
             "requests_per_phase": total}
    for phase, (latencies, elapsed) in (("uniform", uniform),
                                        ("zipf", skewed)):
        assert len(latencies) == total
        entry[f"{phase}_requests_per_s"] = round(total / elapsed, 1)
        entry[f"{phase}_p50_ms"] = round(percentile(latencies, 0.50) * 1e3, 3)
        entry[f"{phase}_p99_ms"] = round(percentile(latencies, 0.99) * 1e3, 3)

    shard_load = stats["shard_load"]
    loads = list(shard_load.values())
    mean_load = sum(loads) / len(loads)
    entry["shard_load"] = shard_load
    entry["max_over_mean_shard_load"] = round(max(loads) / mean_load, 3)
    entry["cache_hits"] = stats["cache"]["hits"]
    entry["cache_misses"] = stats["cache"]["misses"]
    entry["rebalances"] = stats["rebalances"]
    entry["weights_epoch"] = stats["weights_epoch"]
    _record(entry)

    # The cache must be doing the absorbing: most repeat fetches of the
    # popular containers never reach a shard.
    assert stats["cache"]["hits"] > total
    assert max(loads) > 0
    assert entry["zipf_p99_ms"] > 0
