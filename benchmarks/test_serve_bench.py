"""Benchmark: the SSD code server's request throughput and latency.

Guards this repo's serving work rather than a paper exhibit: a local
``ssd serve`` instance is driven by concurrent clients and must sustain
a sane request rate with the shared LRU absorbing repeat decodes.
Requests/second and p50/p99 latency are appended to
``BENCH_serve.json`` for inspection.
"""

import json
import threading
import time
from pathlib import Path

from repro.core import compress
from repro.serve import (
    ClusterConfig,
    LocalCluster,
    RemoteProgram,
    RouterConfig,
    ServeClient,
    serve_in_thread,
)
from repro.serve.metrics import percentile
from repro.vm import run_program
from repro.workloads import benchmark_program, clear_cache

HERE = Path(__file__).resolve().parent
RESULTS_PATH = HERE / "BENCH_serve.json"

CLIENTS = 8
REQUESTS_PER_CLIENT = 150


def _record(entry: dict) -> None:
    existing = (json.loads(RESULTS_PATH.read_text())
                if RESULTS_PATH.exists() else [])
    existing.append(entry)
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def test_get_function_throughput(benchmark):
    """Hot-path GET_FUNCTION: 8 clients hammering one cached container."""
    program = benchmark_program("compress", scale=0.3)
    container = compress(program).data
    function_count = len(program.functions)

    def measure():
        latencies = []
        lock = threading.Lock()
        with serve_in_thread() as handle:
            with ServeClient(*handle.address) as warm:
                container_id, _, _ = warm.put(container)

            barrier = threading.Barrier(CLIENTS)
            errors = []

            def worker(tid: int) -> None:
                try:
                    with ServeClient(*handle.address) as client:
                        barrier.wait(timeout=10)
                        local = []
                        for i in range(REQUESTS_PER_CLIENT):
                            findex = (tid + i) % function_count
                            start = time.perf_counter()
                            client.function(container_id, findex)
                            local.append(time.perf_counter() - start)
                        with lock:
                            latencies.extend(local)
                except Exception as exc:  # noqa: BLE001
                    errors.append(f"{type(exc).__name__}: {exc}")

            threads = [threading.Thread(target=worker, args=(tid,))
                       for tid in range(CLIENTS)]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            elapsed = time.perf_counter() - started
            assert not errors, errors

            with ServeClient(*handle.address) as probe:
                stats = probe.stats()
        return latencies, elapsed, stats

    latencies, elapsed, stats = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    total = CLIENTS * REQUESTS_PER_CLIENT
    assert len(latencies) == total
    requests_per_s = total / elapsed
    p50_ms = percentile(latencies, 0.50) * 1e3
    p99_ms = percentile(latencies, 0.99) * 1e3
    _record({
        "benchmark": "serve_get_function",
        "clients": CLIENTS,
        "requests": total,
        "requests_per_s": round(requests_per_s, 1),
        "p50_ms": round(p50_ms, 3),
        "p99_ms": round(p99_ms, 3),
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "decodes_total": stats["decodes_total"],
    })
    # The LRU must absorb repeats: each function decoded at most once.
    assert stats["decodes_total"] <= function_count
    assert stats["cache"]["hit_rate"] > 0.5
    assert requests_per_s > 50
    assert p50_ms <= p99_ms
    clear_cache()


def test_cache_miss_decode_latency(benchmark):
    """Cold-path decode cost: every function requested exactly once, so
    each request is a cache miss and the server-side ``serve.decode``
    span (the ``serve_decode_seconds`` family + STATS ``decode_latency``
    reservoir) measures pure decompression latency, excluding wire and
    cache-hit time."""
    program = benchmark_program("compress", scale=0.3)
    container = compress(program).data
    function_count = len(program.functions)

    def measure():
        with serve_in_thread() as handle:
            with ServeClient(*handle.address) as client:
                container_id, _, _ = client.put(container)
                for findex in range(function_count):
                    client.function(container_id, findex)
                stats = client.stats()
        return stats

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    decode = stats["decode_latency"]
    _record({
        "benchmark": "serve_cache_miss_decode",
        "functions": function_count,
        "decodes": decode["count"],
        "decode_p50_ms": round(decode["p50_ms"], 3),
        "decode_p99_ms": round(decode["p99_ms"], 3),
        "decode_max_ms": round(decode["max_ms"], 3),
    })
    # Every request was a miss: one timed decode per function.
    assert decode["count"] == function_count
    assert stats["decodes_total"] == function_count
    assert 0 < decode["p50_ms"] <= decode["p99_ms"] <= decode["max_ms"]
    clear_cache()


def _drive_cluster(cluster, container_id, function_count, clients,
                   requests_per_client):
    """Hammer the router from ``clients`` threads; return latencies."""
    latencies = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)
    errors = []

    def worker(tid: int) -> None:
        try:
            with cluster.client(retries=4) as client:
                barrier.wait(timeout=10)
                local = []
                for i in range(requests_per_client):
                    findex = (tid + i) % function_count
                    start = time.perf_counter()
                    client.function(container_id, findex)
                    local.append(time.perf_counter() - start)
                with lock:
                    latencies.extend(local)
        except Exception as exc:  # noqa: BLE001
            errors.append(f"{type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(tid,))
               for tid in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return latencies, elapsed


def test_cluster_throughput_with_and_without_dead_shard(benchmark):
    """Cluster GET_FUNCTION through the router: measure req/s and p99 on
    a healthy 3-shard/replication-2 cluster, then SIGKILL one shard and
    measure again under identical load.  Records both so the degraded
    ratio is gated by ``check_regression.py --serve`` — graceful
    degradation, not collapse, is the contract."""
    program = benchmark_program("compress", scale=0.3)
    container = compress(program).data
    function_count = len(program.functions)

    def measure():
        config = ClusterConfig(
            shards=3, replication=2,
            router=RouterConfig(probe_interval=0.1, probe_timeout=0.5,
                                breaker_cooldown=0.25, seed=0))
        with LocalCluster(config) as cluster:
            with cluster.client() as warm:
                container_id, _, _ = warm.put(container)
            healthy = _drive_cluster(cluster, container_id, function_count,
                                     CLIENTS, REQUESTS_PER_CLIENT // 2)
            cluster.kill_shard(cluster.shard_ids[0])
            degraded = _drive_cluster(cluster, container_id, function_count,
                                      CLIENTS, REQUESTS_PER_CLIENT // 2)
            failovers = cluster.router.metrics.failovers
        return healthy, degraded, failovers

    (healthy, degraded, failovers) = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    total = CLIENTS * (REQUESTS_PER_CLIENT // 2)
    entry = {"benchmark": "serve_cluster_failover",
             "clients": CLIENTS, "requests_per_phase": total,
             "failovers": failovers}
    for phase, (latencies, elapsed) in (("healthy", healthy),
                                        ("one_shard_dead", degraded)):
        assert len(latencies) == total
        entry[f"{phase}_requests_per_s"] = round(total / elapsed, 1)
        entry[f"{phase}_p50_ms"] = round(
            percentile(latencies, 0.50) * 1e3, 3)
        entry[f"{phase}_p99_ms"] = round(
            percentile(latencies, 0.99) * 1e3, 3)
    _record(entry)
    # Above quorum, every request succeeded (asserted in _drive_cluster);
    # the dead shard's keys were served by their surviving replica.
    assert entry["one_shard_dead_requests_per_s"] > 0
    clear_cache()


def test_remote_run_end_to_end(benchmark):
    """Cold-path: serve a container and run it remotely, timing the
    full page-in (meta + every reached function over the wire)."""
    program = benchmark_program("compress", scale=0.3)
    container = compress(program).data
    local = run_program(program, fuel=3_000_000)

    def measure():
        with serve_in_thread() as handle:
            with ServeClient(*handle.address) as client:
                started = time.perf_counter()
                remote = RemoteProgram(client, container)
                result = run_program(remote, fuel=3_000_000)
                elapsed = time.perf_counter() - started
                return result.output, remote.decompressed_count, elapsed

    output, fetched, elapsed = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    assert output == local.output
    _record({
        "benchmark": "serve_remote_run",
        "functions_fetched": fetched,
        "functions_total": len(program.functions),
        "wall_s": round(elapsed, 4),
    })
    assert 0 < fetched <= len(program.functions)
    clear_cache()
