"""Benchmark: decompression and translation throughput.

The paper's claims: copy phase ~12.5 MB/s >> dictionary phase ~7.8 MB/s,
and SSD's JIT rate >= 1.5x BRISC's (section 1: "exceeds BRISC's
decompression and JIT translation rates by over 50%").  Wall-clock numbers
here are Python-speed; the *relationships* are what must reproduce.
"""

from repro.brisc import decompress as brisc_decompress
from repro.core import decompress as ssd_decompress
from repro.core import open_container
from repro.jit import Translator, build_tables


def test_dictionary_phase_throughput(benchmark, context):
    data = context.ssd("go").data
    reader = open_container(data)
    # use_cache=False: this bench measures phase one itself, not the memo.
    tables = benchmark(build_tables, reader, use_cache=False)
    assert tables.total_bytes > 0


def test_copy_phase_throughput(benchmark, context):
    reader = context.reader("go")
    tables = build_tables(reader)
    translator = Translator(reader, tables)

    def translate_all():
        return sum(translator.translate_function(findex).size
                   for findex in range(reader.function_count))

    produced = benchmark(translate_all)
    assert produced > 0


def test_full_decompression_throughput(benchmark, context):
    data = context.ssd("go").data
    program = benchmark(ssd_decompress, data)
    assert program.instruction_count == context.program("go").instruction_count


def test_brisc_decompression_throughput(benchmark, context):
    compressed = context.brisc("go")
    dictionary = context.brisc_dictionary(exclude="go")
    program = benchmark(brisc_decompress, compressed, dictionary)
    assert program.instruction_count == context.program("go").instruction_count


def test_ssd_faster_than_brisc_decompression(benchmark, context):
    """The paper's >=1.5x claim, on this implementation's wall clock."""
    import time

    data = context.ssd("go").data
    compressed = context.brisc("go")
    dictionary = context.brisc_dictionary(exclude="go")

    def measure_pair():
        start = time.perf_counter()
        ssd_decompress(data)
        ssd_time = time.perf_counter() - start
        start = time.perf_counter()
        brisc_decompress(compressed, dictionary)
        brisc_time = time.perf_counter() - start
        return ssd_time, brisc_time

    ssd_time, brisc_time = benchmark.pedantic(measure_pair, rounds=3, iterations=1)
    assert ssd_time < brisc_time
