"""Benchmark: regenerate Figure 3 (RAM-constrained overhead, SSD vs BRISC)."""

from repro.experiments import figure3


def test_figure3_full_exhibit(benchmark, context):
    out = benchmark.pedantic(lambda: figure3.run(context), rounds=1, iterations=1)
    assert "BRISC ovh%" in out


def test_figure3_ssd_degrades_gracefully(benchmark, context):
    """SSD's overhead above the knee stays within a modest band, and the
    BRISC/SSD gap favours SSD where translation volume matters."""

    def measure():
        return figure3.sweep_both(context, ratios=[0.3, 0.4, 0.5])

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    ssd = [p.overhead_pct for p in data["ssd"]]
    brisc = [p.overhead_pct for p in data["brisc"]]
    # Monotone non-increasing overheads with a growing buffer.
    assert ssd == sorted(ssd, reverse=True)
    # Above the knee, SSD's cheap copy phase keeps it at or below BRISC.
    assert ssd[-1] <= brisc[-1] * 1.05
