"""Benchmark: regenerate Table 6 (buffer sweep: MB translated, hit rate)."""

from repro.experiments import table6


def test_table6_full_exhibit(benchmark, context):
    out = benchmark.pedantic(lambda: table6.run(context), rounds=1, iterations=1)
    assert "hit%(ours)" in out


def test_table6_sweep_shape(benchmark, context):
    """Hit rate rises and re-translation collapses as the buffer grows."""

    def measure():
        return table6.sweep(context, ratios=[0.25, 0.35, 0.5])

    points = benchmark.pedantic(measure, rounds=1, iterations=1)
    hit_rates = [p.hit_rate_pct for p in points]
    translated = [p.megabytes_translated for p in points]
    assert hit_rates == sorted(hit_rates)
    assert translated == sorted(translated, reverse=True)
    # Paper: generous buffers still translate the program at least once
    # (the working set sweeps touch everything).
    assert translated[-1] > 0
