#!/usr/bin/env python3
"""Incremental JIT: watch SSD translate code block by block.

The paper's definition of interpretable compression is the ability to
decompress *at basic-block granularity* during execution.  This example
makes that visible: it compresses a small program, then materializes
native code one basic block at a time — exactly Algorithm 3 run over an
item sub-range — showing which bytes exist after each step and which
branch holes are still waiting for their target block.

Run: ``python examples/incremental_jit.py``
"""

from repro import assemble, compress
from repro.core import open_container
from repro.jit import BlockTranslator

SOURCE = """
func main
    li   r2, 10
    li   r3, 0
loop:
    add  r3, r3, r2
    addi r2, r2, -1
    bnez r2, loop
    beqz r3, skip
    mov  r1, r3
    trap 1
skip:
    ret
end
"""


def main() -> None:
    program = assemble(SOURCE)
    reader = open_container(compress(program).data)
    translator = BlockTranslator(reader)

    items = translator.items_of(0)
    leaders = translator.block_leaders(0)
    print(f"function 'main': {len(items)} SSD items, "
          f"{len(leaders)} basic blocks (leaders at items {leaders})\n")

    total = 0
    for block_number, leader in enumerate(leaders):
        fragment = translator.translate_block(0, leader)
        total += fragment.size
        externals = ", ".join(f"item {e.target_item}"
                              for e in fragment.external_branches) or "none"
        print(f"block {block_number}: items [{fragment.start_item}, "
              f"{fragment.end_item}) -> {fragment.size:3d} native bytes "
              f"(cumulative {total}); unresolved external branches: {externals}")

    print(f"\ntranslated {translator.blocks_translated} blocks; every external")
    print("branch targets another block's leader, so the driver can patch it")
    print("as soon as that block gets an address — this is what lets an")
    print("interpreter materialize only the blocks a run actually reaches.")


if __name__ == "__main__":
    main()
