#!/usr/bin/env python3
"""Desktop scenario: faster application start from compressed code.

Section 1 of the paper reports that SSD-compressed Word97 *started 14%
faster* than the native build: fewer code pages had to come off the slow
disk, and at 7.8 MB/s decompression the disk latency dominated anyway.

This example models that trade for the synthetic gcc benchmark:

    native start  = native_bytes  / disk_bandwidth
    ssd start     = compressed_bytes / disk_bandwidth
                    + dictionary_decompression_time
                    + startup_set_translation_time

using late-1990s disk figures and the cycle model's translation rates, and
sweeps disk bandwidth to show where the win appears and disappears.

Run: ``python examples/app_startup.py``
"""

from repro.core import compress, open_container
from repro.jit import SSD_COSTS, Translator, build_tables, seconds
from repro.vm import native_size
from repro.workloads import benchmark_program


def main() -> None:
    program = benchmark_program("gcc", scale=0.25)
    x86 = native_size(program)
    compressed = compress(program)
    reader = open_container(compressed.data)
    tables = build_tables(reader)
    translator = Translator(reader, tables)

    # Starting an app touches a fraction of its code (cold-start set).
    startup_fraction = 0.4
    startup_functions = range(int(reader.function_count * startup_fraction))
    produced = 0
    for findex in startup_functions:
        produced += translator.translate_function(findex).size

    # End-to-end decompression at the dictionary-phase rate (the paper's
    # 7.8 MB/s figure amortizes dictionary work per output byte).
    decompress_time = seconds(SSD_COSTS.dict_byte_cycles * produced)

    print(f"program: native {x86} bytes, SSD {compressed.size} bytes "
          f"({compressed.size / x86:.0%})")
    print(f"startup set: {len(list(startup_functions))} functions, "
          f"{produced} native bytes to materialize\n")
    print(f"{'disk MB/s':>10} {'native start':>13} {'ssd start':>11} {'delta':>8}")
    for disk_mbps in (1.0, 2.0, 4.0, 8.0, 20.0, 80.0):
        native_start = (x86 * startup_fraction) / (disk_mbps * 1e6)
        ssd_start = ((compressed.size * startup_fraction) / (disk_mbps * 1e6)
                     + decompress_time)
        delta = (native_start - ssd_start) / native_start
        print(f"{disk_mbps:>10.1f} {native_start * 1000:>11.1f}ms "
              f"{ssd_start * 1000:>9.1f}ms {delta:>7.0%}")

    print("\nOn slow disks the smaller image wins (the paper saw Word97 start")
    print("14% faster); on fast disks decompression time eats the advantage —")
    print("exactly the memory-hierarchy trade the paper describes.")


if __name__ == "__main__":
    main()
