#!/usr/bin/env python3
"""Dictionary explorer: see what SSD actually learns about a program.

Compresses the synthetic xlisp benchmark and dumps the most valuable
dictionary entries — the instruction idioms the compiler emits over and
over (Table 1's phenomenon, made visible).  Useful for building intuition
about why split-stream dictionary compression works on machine code.

Run: ``python examples/dictionary_explorer.py``
"""

from collections import Counter

from repro.core import build_dictionary, dictionary_statistics
from repro.workloads import benchmark_program


def main() -> None:
    program = benchmark_program("xlisp", scale=0.25)
    dictionary = build_dictionary(program)
    stats = dictionary_statistics(dictionary)

    print(f"program: {program.instruction_count} instructions")
    print(f"dictionary: {stats['base_entries']:.0f} base entries + "
          f"{stats['sequence_entries']:.0f} sequence entries")
    print(f"item stream: {stats['items']:.0f} items "
          f"({stats['compression_leverage']:.2f} instructions each on average)\n")

    # -- hottest single instructions ---------------------------------------
    print("hottest single instructions (base entries):")
    base_uses = Counter(dictionary.base_use_counts)
    for base_id, count in base_uses.most_common(8):
        entry = dictionary.base_entries[base_id]
        print(f"  {count:>6}x  {entry.instruction.render()}")

    # -- hottest sequences ---------------------------------------------------
    print("\nhottest instruction sequences (sequence entries):")
    for sequence, count in sorted(dictionary.sequence_entries.items(),
                                  key=lambda kv: -kv[1])[:8]:
        rendered = "; ".join(
            dictionary.base_entries[base_id].instruction.render()
            for base_id in sequence)
        print(f"  {count:>6}x  [{rendered}]")

    # -- where the bytes go ---------------------------------------------------
    from repro.core import compress

    compressed = compress(program)
    total = compressed.size
    print(f"\ncompressed size breakdown ({total} bytes):")
    for section, size in sorted(compressed.section_sizes.items(),
                                key=lambda kv: -kv[1]):
        print(f"  {section:>14}: {size:>8} bytes ({size / total:.0%})")

    print("\nThe hot sequences above are compiler idioms — loop counters,")
    print("prologues, address computations.  Each occurrence costs just two")
    print("bytes in the item stream; that is SSD's entire trick.")


if __name__ == "__main__":
    main()
