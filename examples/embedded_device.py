#!/usr/bin/env python3
"""Embedded device scenario: run a big program from ROM in a small RAM buffer.

The paper's motivating example (section 1): a hand-held organizer stores
its software compressed in ROM and JIT-translates into a RAM code buffer
much smaller than the program.  SSD's two-phase translation makes the
re-translation cheap enough that execution degrades gracefully as the
buffer shrinks.

This example compresses the synthetic ``go`` benchmark, then simulates
running it through a phased call trace with RAM budgets from generous to
brutal, printing hit rate, re-translation volume and modelled slowdown at
each size.

Run: ``python examples/embedded_device.py``
"""

from repro.core import compress
from repro.jit import SSD_COSTS, sweep_buffer_sizes
from repro.vm import function_native_sizes, native_size
from repro.workloads import TraceSpec, benchmark_program, generate_trace


def main() -> None:
    # The "firmware": a calibrated stand-in for the go benchmark.
    program = benchmark_program("go", scale=0.5)
    x86 = native_size(program)
    compressed = compress(program)
    sections = compressed.section_sizes
    dictionary_bytes = (sections["segment_bases"] + sections["segment_trees"]
                        + sections["common_bases"] + sections["common_tree"])

    print("firmware image")
    print(f"  native build:     {x86:8d} bytes  (needs this much ROM+RAM uncompressed)")
    print(f"  SSD compressed:   {compressed.size:8d} bytes of ROM "
          f"({compressed.size / x86:.0%} of native)")
    print(f"  of which dictionary {dictionary_bytes} bytes, "
          f"items {sections['items']} bytes")

    # A bursty interactive workload: three feature phases over the code.
    sizes = function_native_sizes(program, optimize=False)
    trace = generate_trace(TraceSpec(
        function_count=len(sizes),
        calls_per_phase=30 * len(sizes),
        phases=3,
        skew=1.8,
        core_fraction=0.4,
        seed=42,
    ))

    print(f"\nworkload: {len(trace)} calls across {len(sizes)} functions\n")
    print(f"{'RAM budget':>12} {'of native':>10} {'hit rate':>9} "
          f"{'retranslated':>13} {'slowdown':>9}")
    ratios = [1.0, 0.6, 0.45, 0.35, 0.3, 0.25]
    points = sweep_buffer_sizes(sizes, trace, x86, ratios,
                                dictionary_bytes=dictionary_bytes,
                                costs=SSD_COSTS)
    for point in points:
        print(f"{point.buffer_bytes:>12d} {point.buffer_ratio:>9.0%} "
              f"{point.hit_rate_pct:>8.1f}% "
              f"{point.megabytes_translated:>11.2f}MB "
              f"{1 + point.overhead_pct / 100:>8.2f}x")

    print("\nReading the table: with a RAM buffer one-third the native size,")
    print("the device still runs within a modest slowdown — the paper's")
    print("graceful-degradation story for ROM-constrained hardware.")


if __name__ == "__main__":
    main()
