#!/usr/bin/env python3
"""Quickstart: compress a program, inspect the dictionary, decompress, run.

Walks the full SSD pipeline on a small hand-written program:

1. assemble a program for the virtual ISA;
2. compress it (Algorithm 1 dictionary + Algorithm 2 items);
3. inspect what the compressor built;
4. decompress it back and verify instruction-exact identity;
5. run both versions in the interpreter and compare outputs.

Run: ``python examples/quickstart.py``
"""

from repro import assemble, compress, decompress, run_program
from repro.core import dictionary_statistics, build_dictionary
from repro.vm import native_size

SOURCE = """
# Sum the squares 1^2 + 2^2 + ... + 10^2 and print the result.
func main
    li   r16, 10          # n
    li   r17, 0           # accumulator
loop:
    mov  r2, r16
    call square
    add  r17, r17, r1
    addi r16, r16, -1
    bnez r16, loop
    mov  r1, r17
    trap 1                # print r1
    ret
end

func square
    mul  r1, r2, r2
    ret
end
"""


def main() -> None:
    program = assemble(SOURCE)
    print(f"program: {len(program.functions)} functions, "
          f"{program.instruction_count} instructions, "
          f"{native_size(program)} bytes of optimized native code")

    # -- compression --------------------------------------------------------
    compressed = compress(program)
    print(f"\ncompressed to {compressed.size} bytes "
          f"({compressed.size / native_size(program):.0%} of native)")
    print("sections:", compressed.section_sizes)

    # -- what did the dictionary find? -------------------------------------
    stats = dictionary_statistics(build_dictionary(program))
    print(f"\ndictionary: {stats['base_entries']:.0f} base entries, "
          f"{stats['sequence_entries']:.0f} sequence entries")
    print(f"sequence entries cover {stats['sequence_coverage']:.0%} of the "
          f"program; {stats['compression_leverage']:.2f} instructions per item")

    # -- round trip ---------------------------------------------------------
    restored = decompress(compressed.data)
    identical = all(a.insns == b.insns
                    for a, b in zip(program.functions, restored.functions))
    print(f"\ndecompressed program identical: {identical}")

    before = run_program(program).output
    after = run_program(restored).output
    print(f"original output:     {before}")
    print(f"decompressed output: {after}")
    assert before == after == [385]
    print("\nOK: compression is behaviour-preserving.")


if __name__ == "__main__":
    main()
